(* Hash indexes over relations, keyed on subsets of argument positions.

   Joins in [Cq.eval_substs] repeatedly ask "which tuples of R agree with the
   current binding on these positions?".  The naive answer folds over the
   whole relation once per candidate binding; this layer answers it with one
   hash probe against a table built once per (relation value, position set).

   Tables are built lazily: the first probe for a (name, positions) pair pays
   one O(|R|) pass, every later probe is O(#matches).  A store is carried by
   each [Database.t] and shared across its functional updates; staleness is
   detected per relation via {!Relation.stamp}, so updating one relation
   never invalidates the cached indexes of the others (this is what keeps
   semi-naive datalog rounds fast: the EDB indexes survive every round). *)

type key = Value.t list

module Key_tbl = Hashtbl.Make (struct
  type t = key

  let equal = List.equal Value.equal

  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 k
end)

(* One indexed view of one relation value: tuples grouped by their values at
   [positions]. *)
type table = Tuple.t list Key_tbl.t

(* All indexed views of the relation currently named [name]; dropped
   wholesale when the relation's stamp moves. *)
type entry = {
  stamp : int;
  tables : (int list, table) Hashtbl.t;
}

type t = (string, entry) Hashtbl.t

let create () : t = Hashtbl.create 16

let key_of positions tuple = List.map (fun i -> Tuple.get tuple i) positions

let build_table rel positions : table =
  let table = Key_tbl.create (max 16 (Relation.cardinal rel)) in
  Relation.iter
    (fun tuple ->
      let k = key_of positions tuple in
      let prev = Option.value ~default:[] (Key_tbl.find_opt table k) in
      Key_tbl.replace table k (tuple :: prev))
    rel;
  table

let entry_for store name rel =
  match Hashtbl.find_opt store name with
  | Some e when e.stamp = Relation.stamp rel -> e
  | _ ->
    let e = { stamp = Relation.stamp rel; tables = Hashtbl.create 4 } in
    Hashtbl.replace store name e;
    e

let table_for store ~name rel ~positions =
  let entry = entry_for store name rel in
  match Hashtbl.find_opt entry.tables positions with
  | Some table ->
    Obs.Trace.emit (Obs.Trace.Cache { layer = "index"; hit = true });
    table
  | None ->
    Obs.Trace.emit (Obs.Trace.Cache { layer = "index"; hit = false });
    let table = build_table rel positions in
    Hashtbl.replace entry.tables positions table;
    table

let probe store ~name rel ~positions key =
  if positions = [] then Relation.to_list rel
  else
    let table = table_for store ~name rel ~positions in
    Option.value ~default:[] (Key_tbl.find_opt table key)

let cached_tables store =
  Hashtbl.fold (fun _ e acc -> acc + Hashtbl.length e.tables) store 0
