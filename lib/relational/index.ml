(* Hash indexes over relations, keyed on subsets of argument positions.

   Joins in [Cq.eval_substs] repeatedly ask "which tuples of R agree with the
   current binding on these positions?".  The naive answer folds over the
   whole relation once per candidate binding; this layer answers it with one
   hash probe against a table built once per (relation value, position set).

   Keys and bucket contents are interned: a key is the id list of the values
   at the probed positions, buckets hold packed {!Repr.Ituple}s, so building
   a table never externs and probing hashes a few ints.

   Tables are built lazily: the first probe for a (name, positions) pair pays
   one O(|R|) pass, every later probe is O(#matches).  A store is carried by
   each [Database.t] and shared across its functional updates; staleness is
   detected per relation via {!Relation.stamp}, so updating one relation
   never invalidates the cached indexes of the others (this is what keeps
   semi-naive datalog rounds fast: the EDB indexes survive every round). *)

type key = int list

module Key_tbl = Hashtbl.Make (struct
  type t = key

  let equal = List.equal Int.equal

  let hash k = List.fold_left (fun acc id -> (acc * 31) + id) 17 k
end)

(* One indexed view of one relation value: tuples grouped by their ids at
   [positions]. *)
type table = Repr.Ituple.t list Key_tbl.t

(* All indexed views of the relation currently named [name]; dropped
   wholesale when the relation's stamp moves. *)
type entry = {
  stamp : int;
  tables : (int list, table) Hashtbl.t;
}

(* The mutable store is sharded per domain: each domain that probes builds
   its own tables lazily, so probes never synchronise (no lock on the hot
   path) at the cost of re-deriving a table per probing domain.  Tables are
   pure functions of (relation value, positions), so the shards never
   disagree; on one domain this is exactly the old single store. *)
type store = (string, entry) Hashtbl.t

type t = store Par.Shard.t

let create () : t = Par.Shard.create (fun () -> Hashtbl.create 16)

let build_table rel positions : table =
  let table = Key_tbl.create (max 16 (Relation.cardinal rel)) in
  (* hoisted once per table build, reused for every tuple *)
  let pos = Array.of_list positions in
  Relation.iter_interned
    (fun it ->
      let k = Array.to_list (Array.map (fun i -> Repr.Ituple.get it i) pos) in
      let prev = Option.value ~default:[] (Key_tbl.find_opt table k) in
      Key_tbl.replace table k (it :: prev))
    rel;
  table

let entry_for (store : store) name rel =
  match Hashtbl.find_opt store name with
  | Some e when e.stamp = Relation.stamp rel -> e
  | _ ->
    let e = { stamp = Relation.stamp rel; tables = Hashtbl.create 4 } in
    Hashtbl.replace store name e;
    e

let table_for sharded ~name rel ~positions =
  let store = Par.Shard.get sharded in
  let entry = entry_for store name rel in
  match Hashtbl.find_opt entry.tables positions with
  | Some table ->
    Obs.Trace.emit (Obs.Trace.Cache { layer = "index"; hit = true });
    table
  | None ->
    Obs.Trace.emit (Obs.Trace.Cache { layer = "index"; hit = false });
    let table = build_table rel positions in
    Hashtbl.replace entry.tables positions table;
    table

let probe store ~name rel ~positions key =
  if positions = [] then Relation.fold_interned (fun it acc -> it :: acc) rel []
  else
    let table = table_for store ~name rel ~positions in
    Option.value ~default:[] (Key_tbl.find_opt table key)

let cached_tables sharded =
  Par.Shard.fold
    (fun acc store ->
      Hashtbl.fold (fun _ e acc -> acc + Hashtbl.length e.tables) store acc)
    0 sharded
