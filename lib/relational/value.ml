(* Data values from the infinite domain [D] of the paper (Section 2).
   Databases, input messages and actions all range over this domain.

   [Frozen] values are the labelled nulls produced when freezing a query
   into its canonical database (Klug's containment test); they are a
   separate constructor so no user string can collide with them — the old
   "@f%d" string encoding misclassified any user value starting with '@'.

   Every value can be interned to a dense int id through the global
   {!Repr.Symtab} table: [id]/[of_id] are injective inverses, so id equality
   coincides with [equal] and the relational layer stores packed id tuples
   internally. *)

type t =
  | Int of int
  | Str of string
  | Frozen of int

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Frozen x, Frozen y -> Int.compare x y
  | Int _, (Str _ | Frozen _) -> -1
  | (Str _ | Frozen _), Int _ -> 1
  | Str _, Frozen _ -> -1
  | Frozen _, Str _ -> 1

let equal a b = compare a b = 0

(* Mix the constructor tag in additively rather than hashing a (tag, x)
   pair: [Hashtbl.hash] on a fresh tuple allocates it first, and this
   function sits on the interning fast path of every tuple operation. *)
let hash = function
  | Int x -> Hashtbl.hash x
  | Str s -> (Hashtbl.hash s + 0x531) land max_int
  | Frozen k -> (Hashtbl.hash k + 0x9e37) land max_int

let int i = Int i
let str s = Str s

let pp ppf = function
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.string ppf s
  | Frozen k -> Fmt.pf ppf "@f%d" k

let to_string v = Fmt.str "%a" pp v

(* Scoped supplies of labelled nulls.  Two values from one supply are
   distinct; values from different supplies may collide, so every procedure
   that accumulates canonical databases must thread a single supply through
   all of its freezes (Cq.contained_in_many, Decision.cq_validation). *)
module Fresh = struct
  (* Atomic so a supply threaded through a parallel candidate fan-out never
     mints the same null twice (a lost increment would alias two distinct
     frozen constants and make containment tests spuriously succeed). *)
  type supply = int Atomic.t

  let supply () = Atomic.make 0

  let next s = Frozen (Atomic.fetch_and_add s 1)
end

let is_frozen = function Frozen _ -> true | Int _ | Str _ -> false

(* ------------------------------------------------------------------ *)
(* Interning                                                          *)
(* ------------------------------------------------------------------ *)

module Tab = Repr.Symtab.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* Frozen values bypass the table: a labelled null is already a dense int,
   so its id is drawn from the negative range [-(k+1)].  [Cq.partitions]
   mints fresh nulls by the hundred thousand, and a table probe per mint
   dominates its enumeration; arithmetic is free.  The two ranges are
   disjoint, so id equality still coincides with [equal]. *)
let id = function
  | Frozen k -> -k - 1
  | v -> Tab.intern Tab.global v

let of_id i = if i < 0 then Frozen (-i - 1) else Tab.extern Tab.global i

let interner_size () = Tab.size Tab.global

(* Snapshot support: the persisted form of the id space is simply every
   interned value in id order.  [Frozen] values never appear — they live in
   the negative arithmetic range and never reach the table — so a snapshot
   holds only [Int]/[Str] values and id stability reduces to re-interning
   the dump front to back. *)
let interner_dump () = Tab.dump Tab.global
