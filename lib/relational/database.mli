(** Database instances over a {!Schema.t}: named finite relations.

    Relations not explicitly set are empty.  Arities are enforced. *)

type t

val empty : Schema.t -> t
val schema : t -> Schema.t

(** The database's lazily-populated index cache (see {!Index}).  Shared by
    all functional updates of this value; correctness is maintained through
    {!Relation.stamp} staleness checks. *)
val index_store : t -> Index.t

(** [find name db] is the instance of [name]; empty if never set.  Fails if
    [name] is not in the schema. *)
val find : string -> t -> Relation.t

val set : string -> Relation.t -> t -> t
val add_tuple : string -> Tuple.t -> t -> t
val of_list : Schema.t -> (string * Relation.t) list -> t
val fold : (string -> Relation.t -> 'a -> 'a) -> t -> 'a -> 'a
val is_empty : t -> bool
val total_tuples : t -> int
val equal : t -> t -> bool

(** Every value occurring in some relation, sorted. *)
val active_domain : t -> Value.t list

(** Union of two databases, relation by relation; schemas are unioned. *)
val merge : t -> t -> t

val pp : t Fmt.t
