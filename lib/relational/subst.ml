(* Substitutions mapping variable names to data values: the valuations found
   when evaluating query bodies against a database.  Bindings are stored as
   interned ids, so the join-consistency check ([extend]) is an int
   comparison and the CQ evaluator can unify at the id level without
   externing probe results. *)

module Smap = Map.Make (String)

type t = int Smap.t

let empty = Smap.empty

let find_id x s = Smap.find_opt x s

let find x s = Option.map Value.of_id (Smap.find_opt x s)

let bind_id x id s = Smap.add x id s

let bind x v s = Smap.add x (Value.id v) s

let remove x s = Smap.remove x s

let mem x s = Smap.mem x s

let of_list l = List.fold_left (fun s (x, v) -> bind x v s) empty l

let to_list s = List.map (fun (x, id) -> (x, Value.of_id id)) (Smap.bindings s)

(* Extend [s] with [x -> id]; [None] when [x] is already bound to a different
   value.  This is the single point where join consistency is enforced;
   interning makes it one int comparison. *)
let extend_id x id s =
  match Smap.find_opt x s with
  | None -> Some (Smap.add x id s)
  | Some id' -> if id = id' then Some s else None

let extend x v s = extend_id x (Value.id v) s

let apply_term s = function
  | Term.Const v -> Some v
  | Term.Var x -> find x s

let apply_term_exn s t =
  match apply_term s t with
  | Some v -> v
  | None -> invalid_arg "Subst.apply_term_exn: unbound variable"

let equal = Smap.equal Int.equal

let pp ppf s =
  let pp_one ppf (x, v) = Fmt.pf ppf "%s:=%a" x Value.pp v in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_one) (to_list s)
