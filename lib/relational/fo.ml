(* First-order logic over relational vocabularies (the language FO of the
   paper).  Evaluation uses active-domain semantics: quantifiers range over
   the values occurring in the database, the formula's constants, and any
   extra values supplied by the caller.  This matches the data-driven
   transducer models of [2, 12, 13, 29] that SWS(FO, FO) captures.

   FO satisfiability is undecidable (Trakhtenbrot); [satisfiable_bounded]
   is the bounded semi-procedure used for the undecidable cells of Table 1. *)

type formula =
  | True
  | False
  | Atom of Atom.t
  | Eq of Term.t * Term.t
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Exists of string * formula
  | Forall of string * formula

type t = {
  head : string list; (* free variables, in answer order *)
  body : formula;
}

let atom rel args = Atom (Atom.make rel args)
let eq a b = Eq (a, b)
let neq a b = Not (Eq (a, b))

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let disj = function
  | [] -> False
  | f :: fs -> List.fold_left (fun acc g -> Or (acc, g)) f fs

let exists_many xs f = List.fold_right (fun x g -> Exists (x, g)) xs f
let forall_many xs f = List.fold_right (fun x g -> Forall (x, g)) xs f

let query head body = { head; body }

let rec free_vars_formula bound f acc =
  let term t acc =
    match t with
    | Term.Var x -> if List.mem x bound then acc else x :: acc
    | Term.Const _ -> acc
  in
  match f with
  | True | False -> acc
  | Atom a -> List.fold_left (fun acc t -> term t acc) acc a.Atom.args
  | Eq (a, b) -> term a (term b acc)
  | Not g -> free_vars_formula bound g acc
  | And (g, h) | Or (g, h) | Implies (g, h) ->
    free_vars_formula bound g (free_vars_formula bound h acc)
  | Exists (x, g) | Forall (x, g) -> free_vars_formula (x :: bound) g acc

let free_vars f = free_vars_formula [] f [] |> List.sort_uniq String.compare

let rec constants_formula f acc =
  let term t acc =
    match t with Term.Const v -> v :: acc | Term.Var _ -> acc
  in
  match f with
  | True | False -> acc
  | Atom a -> List.fold_left (fun acc t -> term t acc) acc a.Atom.args
  | Eq (a, b) -> term a (term b acc)
  | Not g -> constants_formula g acc
  | And (g, h) | Or (g, h) | Implies (g, h) ->
    constants_formula g (constants_formula h acc)
  | Exists (_, g) | Forall (_, g) -> constants_formula g acc

let constants f = constants_formula f [] |> List.sort_uniq Value.compare

let rec schema_of_formula f s =
  match f with
  | True | False | Eq _ -> s
  | Atom a -> Schema.add a.Atom.rel (Atom.arity a) s
  | Not g -> schema_of_formula g s
  | And (g, h) | Or (g, h) | Implies (g, h) ->
    schema_of_formula g (schema_of_formula h s)
  | Exists (_, g) | Forall (_, g) -> schema_of_formula g s

let schema_of q = schema_of_formula q.body Schema.empty

(* Substitute terms for free variables; stops at binders of the same name.
   No capture avoidance: callers must keep replacement terms clear of bound
   variable names (asserted below for variables). *)
let rec subst_free env f =
  let on_term = function
    | Term.Var x as t -> (
      match List.assoc_opt x env with Some t' -> t' | None -> t)
    | Term.Const _ as t -> t
  in
  match f with
  | True | False -> f
  | Atom a -> Atom (Atom.map_terms on_term a)
  | Eq (a, b) -> Eq (on_term a, on_term b)
  | Not g -> Not (subst_free env g)
  | And (g, h) -> And (subst_free env g, subst_free env h)
  | Or (g, h) -> Or (subst_free env g, subst_free env h)
  | Implies (g, h) -> Implies (subst_free env g, subst_free env h)
  | Exists (x, g) | Forall (x, g) ->
    let env = List.remove_assoc x env in
    List.iter
      (fun (_, t) ->
        match t with
        | Term.Var y ->
          if String.equal y x then
            invalid_arg "Fo.subst_free: replacement would be captured"
        | Term.Const _ -> ())
      env;
    let g' = subst_free env g in
    (match f with
    | Exists _ -> Exists (x, g')
    | Forall _ -> Forall (x, g')
    | _ -> assert false)

(* Prefix every variable name (free and bound alike): renames a formula
   apart before inlining it into another one. *)
let rec prefix_vars p = function
  | True -> True
  | False -> False
  | Atom a ->
    Atom
      (Atom.map_terms
         (function Term.Var x -> Term.Var (p ^ x) | Term.Const _ as t -> t)
         a)
  | Eq (a, b) ->
    let on_term = function
      | Term.Var x -> Term.Var (p ^ x)
      | Term.Const _ as t -> t
    in
    Eq (on_term a, on_term b)
  | Not g -> Not (prefix_vars p g)
  | And (g, h) -> And (prefix_vars p g, prefix_vars p h)
  | Or (g, h) -> Or (prefix_vars p g, prefix_vars p h)
  | Implies (g, h) -> Implies (prefix_vars p g, prefix_vars p h)
  | Exists (x, g) -> Exists (p ^ x, prefix_vars p g)
  | Forall (x, g) -> Forall (p ^ x, prefix_vars p g)

let prefix_query p q =
  { head = List.map (fun x -> p ^ x) q.head; body = prefix_vars p q.body }

(* Rename relation symbols throughout a formula. *)
let rec map_relations rename = function
  | True -> True
  | False -> False
  | Atom a -> rename a
  | Eq (a, b) -> Eq (a, b)
  | Not g -> Not (map_relations rename g)
  | And (g, h) -> And (map_relations rename g, map_relations rename h)
  | Or (g, h) -> Or (map_relations rename g, map_relations rename h)
  | Implies (g, h) -> Implies (map_relations rename g, map_relations rename h)
  | Exists (x, g) -> Exists (x, map_relations rename g)
  | Forall (x, g) -> Forall (x, map_relations rename g)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                         *)
(* ------------------------------------------------------------------ *)

let domain_of ?(extra = []) db f =
  Database.active_domain db @ constants f @ extra
  |> List.sort_uniq Value.compare

(* Evaluation works at the id level throughout: the quantifier domain is a
   list of interned ids, environments bind ids ({!Subst} stores them that
   way), and atoms unify against [Relation]'s interned tuples directly —
   no [Value.t] is materialized, and join consistency is an int comparison.
   The public [holds] converts its domain once at entry. *)

(* An atom argument, resolved for unification: a constant's id or a
   variable name.  Computed once per atom, not once per tuple. *)
type arg_spec =
  | Cid of int
  | Avar of string

let arg_specs args =
  Array.of_list
    (List.map
       (function
         | Term.Const v -> Cid (Value.id v)
         | Term.Var x -> Avar x)
       args)

(* Unify an interned tuple against the specs under [env]. *)
let unify_specs specs env tuple =
  let n = Array.length specs in
  let rec go env i =
    if i >= n then Some env
    else
      match specs.(i) with
      | Cid c ->
        if Repr.Ituple.get tuple i = c then go env (i + 1) else None
      | Avar x -> (
        match Subst.extend_id x (Repr.Ituple.get tuple i) env with
        | Some env -> go env (i + 1)
        | None -> None)
  in
  go env 0

(* Existential blocks are evaluated atom-driven where possible: for
   Exists x1..xk (A /\ rest) with A a relational atom, candidate bindings
   for the xi occurring in A are read off A's relation instead of scanning
   the whole active domain per variable.  This is sound for active-domain
   semantics (every relation value is in the domain) and turns the nested
   quantifiers produced by query composition into indexed joins. *)
let rec holds_ids db dom env f =
  let term_id t =
    match t with
    | Term.Const v -> Value.id v
    | Term.Var x -> (
      match Subst.find_id x env with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "Fo.holds: free variable %s" x))
  in
  match f with
  | True -> true
  | False -> false
  | Atom a ->
    let it = Repr.Ituple.of_list (List.map term_id a.Atom.args) in
    Relation.mem_interned it (Database.find a.Atom.rel db)
  | Eq (a, b) -> term_id a = term_id b
  | Not g -> not (holds_ids db dom env g)
  | And (g, h) -> holds_ids db dom env g && holds_ids db dom env h
  | Or (g, h) -> holds_ids db dom env g || holds_ids db dom env h
  | Implies (g, h) -> (not (holds_ids db dom env g)) || holds_ids db dom env h
  | Exists (x, g) -> exists_block db dom env [ x ] g
  | Forall (x, g) ->
    List.for_all (fun i -> holds_ids db dom (Subst.bind_id x i env) g) dom

and exists_block db dom env xs g =
  match g with
  | Exists (y, h) -> exists_block db dom env (y :: xs) h
  | _ -> (
    (* the quantifier shadows any outer binding of the same name *)
    let env = List.fold_left (fun e x -> Subst.remove x e) env xs in
    let rec flatten acc = function
      | And (a, b) -> flatten (flatten acc a) b
      | f -> f :: acc
    in
    let conjuncts = flatten [] g in
    (* a driving atom: every argument is a constant, a bound variable, or
       one of the existential variables *)
    let drivable (c : formula) =
      match c with
      | Atom a ->
        List.for_all
          (function
            | Term.Const _ -> true
            | Term.Var x -> Subst.mem x env || List.mem x xs)
          a.Atom.args
      | _ -> false
    in
    match List.partition drivable conjuncts with
    | Atom a :: other_atoms, rest ->
      let rest = other_atoms @ rest in
      let rel = Database.find a.Atom.rel db in
      let specs = arg_specs a.Atom.args in
      let continue env' =
        let bound_now = fun x -> Subst.mem x env' in
        let remaining = List.filter (fun x -> not (bound_now x)) xs in
        let body =
          match rest with [] -> True | c :: cs -> List.fold_left (fun f g -> And (f, g)) c cs
        in
        match remaining with
        | [] -> holds_ids db dom env' body
        | _ -> exists_block db dom env' remaining body
      in
      Relation.exists_interned
        (fun tuple ->
          match unify_specs specs env tuple with
          | Some env' -> continue env'
          | None -> false)
        rel
    | _ -> (
      (* no driving atom: fall back to the domain scan, one variable at a
         time (re-entering the optimization for the remainder) *)
      match xs with
      | [] -> holds_ids db dom env g
      | x :: rest ->
        List.exists
          (fun i ->
            let env' = Subst.bind_id x i env in
            match rest with
            | [] -> holds_ids db dom env' g
            | _ -> exists_block db dom env' rest g)
          dom))

let holds db dom env f = holds_ids db (List.map Value.id dom) env f

let sentence_holds ?extra db f =
  match free_vars f with
  | [] -> holds db (domain_of ?extra db f) Subst.empty f
  | x :: _ -> invalid_arg (Printf.sprintf "Fo.sentence_holds: free variable %s" x)

(* Reference evaluator: enumerate all head assignments over the active
   domain.  Kept as the oracle the optimized evaluator is tested against. *)
let head_tuple head env =
  Repr.Ituple.of_list
    (List.map
       (fun x ->
         match Subst.find_id x env with
         | Some i -> i
         | None -> invalid_arg "Fo.eval: unbound head variable")
       head)

let eval_naive ?extra q db =
  let dom = List.map Value.id (domain_of ?extra db q.body) in
  let rec assignments env = function
    | [] -> if holds_ids db dom env q.body then [ env ] else []
    | x :: rest ->
      List.concat_map (fun i -> assignments (Subst.bind_id x i env) rest) dom
  in
  List.fold_left
    (fun rel env -> Relation.add_interned (head_tuple q.head env) rel)
    (Relation.empty (List.length q.head))
    (assignments Subst.empty q.head)

(* Optimized evaluator: an all-solutions search over the head variables
   that (1) drives bindings off relational atoms, (2) splits top-level
   disjunctions, (3) evaluates fully-bound conjuncts eagerly to prune,
   (4) hoists positive existential conjuncts into the search
   (∃z.φ ∧ ψ ≡ ∃z'.(φ ∧ ψ) for fresh z'), and (5) falls back to the
   domain scan variable by variable.  Same active-domain semantics as
   [eval_naive]; property-tested against it. *)
let hoist_counter = ref 0

let eval ?extra q db =
  let dom = List.map Value.id (domain_of ?extra db q.body) in
  let results = ref (Relation.empty (List.length q.head)) in
  let emit env =
    results := Relation.add_interned (head_tuple q.head env) !results
  in
  let rec flatten acc = function
    | And (a, b) -> flatten (flatten acc a) b
    | True -> acc
    | f -> f :: acc
  in
  let ready env c =
    List.for_all (fun x -> Subst.mem x env) (free_vars c)
  in
  let drivable env xs (c : formula) =
    match c with
    | Atom a ->
      List.for_all
        (function
          | Term.Const _ -> true
          | Term.Var x -> Subst.mem x env || List.mem x xs)
        a.Atom.args
    | _ -> false
  in
  let rec search env xs conjuncts =
    (* prune on fully bound conjuncts first *)
    let rec filter_ready kept = function
      | [] -> Some (List.rev kept)
      | c :: rest ->
        if ready env c then
          if holds_ids db dom env c then filter_ready kept rest else None
        else filter_ready (c :: kept) rest
    in
    match filter_ready [] conjuncts with
    | None -> ()
    | Some conjuncts -> (
      match xs with
      | [] ->
        (* safety: with all head variables bound, every conjunct is ready *)
        if conjuncts = [] then emit env
      | _ -> (
        match List.partition (drivable env xs) conjuncts with
        | (Atom a :: later_atoms), rest ->
          let rest = later_atoms @ rest in
          let rel = Database.find a.Atom.rel db in
          let specs = arg_specs a.Atom.args in
          Relation.iter_interned
            (fun tuple ->
              match unify_specs specs env tuple with
              | Some env' ->
                let xs' = List.filter (fun x -> not (Subst.mem x env')) xs in
                search env' xs' rest
              | None -> ())
            rel
        | _, conjuncts -> (
          (* split a disjunction if one is available *)
          let rec find_or prefix = function
            | [] -> None
            | Or (p, q) :: rest -> Some (p, q, List.rev_append prefix rest)
            | c :: rest -> find_or (c :: prefix) rest
          in
          match find_or [] conjuncts with
          | Some (p, q, others) ->
            search env xs (flatten others p);
            search env xs (flatten others q)
          | None -> (
            (* hoist a positive existential conjunct into the search *)
            let rec find_exists prefix = function
              | [] -> None
              | (Exists _ as e) :: rest -> Some (e, List.rev_append prefix rest)
              | c :: rest -> find_exists (c :: prefix) rest
            in
            match find_exists [] conjuncts with
            | Some (e, others) ->
              let rec strip acc = function
                | Exists (x, g) -> strip (x :: acc) g
                | g -> (acc, g)
              in
              let zs, body = strip [] e in
              let renaming =
                List.map
                  (fun z ->
                    incr hoist_counter;
                    (z, Printf.sprintf "@ex%d" !hoist_counter))
                  zs
              in
              let body =
                subst_free
                  (List.map (fun (z, z') -> (z, Term.Var z')) renaming)
                  body
              in
              search env (List.map snd renaming @ xs) (flatten others body)
            | None -> (
              match xs with
              | [] -> ()
              | x :: rest ->
                List.iter
                  (fun i -> search (Subst.bind_id x i env) rest conjuncts)
                  dom)))))
  in
  search Subst.empty q.head (flatten [] q.body);
  !results

(* ------------------------------------------------------------------ *)
(* Bounded satisfiability (semi-procedure)                             *)
(* ------------------------------------------------------------------ *)

type sat_result =
  | Sat of Database.t
  | Unsat_within_bounds
  | Search_too_large

(* Enumerate all databases over domains {1..k} for k <= max_dom (always
   including the formula's constants) and test the sentence on each.  The
   search space is the powerset of the candidate tuple pool, so a pool-size
   guard keeps the procedure honest: exceeding it reports Search_too_large
   rather than silently truncating. *)
let satisfiable_bounded ?(max_dom = 3) ?(max_pool = 18) sentence =
  let schema = schema_of_formula sentence Schema.empty in
  let consts = constants sentence in
  let rec tuples_over dom arity =
    if arity = 0 then [ [] ]
    else
      let rest = tuples_over dom (arity - 1) in
      List.concat_map (fun v -> List.map (fun t -> v :: t) rest) dom
  in
  let try_domain k =
    let dom =
      consts @ List.init k (fun i -> Value.int (i + 1))
      |> List.sort_uniq Value.compare
    in
    let pool =
      List.concat_map
        (fun (rel, arity) ->
          List.map (fun t -> (rel, Tuple.of_list t)) (tuples_over dom arity))
        (Schema.to_list schema)
    in
    if List.length pool > max_pool then Error `Too_large
    else begin
      let rec search db = function
        | [] -> if sentence_holds ~extra:dom db sentence then Some db else None
        | (rel, t) :: rest -> (
          match search db rest with
          | Some db -> Some db
          | None -> search (Database.add_tuple rel t db) rest)
      in
      match search (Database.empty schema) pool with
      | Some db -> Ok db
      | None -> Error `Unsat
    end
  in
  let rec go k too_large =
    if k > max_dom then
      if too_large then Search_too_large else Unsat_within_bounds
    else
      match try_domain k with
      | Ok db -> Sat db
      | Error `Too_large -> go (k + 1) true
      | Error `Unsat -> go (k + 1) too_large
  in
  go 1 false

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec pp_formula ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom a -> Atom.pp ppf a
  | Eq (a, b) -> Fmt.pf ppf "%a = %a" Term.pp a Term.pp b
  | Not (Eq (a, b)) -> Fmt.pf ppf "%a <> %a" Term.pp a Term.pp b
  | Not g -> Fmt.pf ppf "~(%a)" pp_formula g
  | And (g, h) -> Fmt.pf ppf "(%a /\\ %a)" pp_formula g pp_formula h
  | Or (g, h) -> Fmt.pf ppf "(%a \\/ %a)" pp_formula g pp_formula h
  | Implies (g, h) -> Fmt.pf ppf "(%a -> %a)" pp_formula g pp_formula h
  | Exists (x, g) -> Fmt.pf ppf "(exists %s. %a)" x pp_formula g
  | Forall (x, g) -> Fmt.pf ppf "(forall %s. %a)" x pp_formula g

let pp ppf q =
  Fmt.pf ppf "ans(%a) :- %a" Fmt.(list ~sep:(any ", ") string) q.head pp_formula q.body
