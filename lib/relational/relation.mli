(** Finite relations: sets of tuples of a fixed arity.

    These are the contents of local databases, message registers [Msg(q)] and
    action registers [Act(q)] of an SWS (paper, Section 2). *)

type t

exception Arity_mismatch of string

val empty : int -> t
val is_empty : t -> bool
val arity : t -> int
val cardinal : t -> int
val mem : Tuple.t -> t -> bool

(** A per-value identity: every structurally-new relation carries a fresh
    stamp, unchanged tuple sets keep theirs.  {!Index} keys its cached hash
    indexes on it to detect staleness in O(1); it is not part of the value
    ({!equal} and {!compare} ignore it). *)
val stamp : t -> int

(** Raises {!Arity_mismatch} when the tuple arity differs. *)
val add : Tuple.t -> t -> t

(** Raises {!Arity_mismatch} when the tuple arity differs (aligned with
    {!add}: a wrong-arity removal is a bug, not a no-op). *)
val remove : Tuple.t -> t -> t
val of_list : int -> Tuple.t list -> t
val to_list : t -> Tuple.t list
val singleton : Tuple.t -> t
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val filter : (Tuple.t -> bool) -> t -> t
val exists : (Tuple.t -> bool) -> t -> bool
val for_all : (Tuple.t -> bool) -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val subset : t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val product : t -> t -> t
val project : int list -> t -> t
val select : (Tuple.t -> bool) -> t -> t
val map_tuples : (Tuple.t -> Tuple.t) -> t -> t

(** Sorted list of the distinct values occurring in the relation. *)
val values : t -> Value.t list

val pp : t Fmt.t
val to_string : t -> string
