(** Finite relations: sets of tuples of a fixed arity.

    These are the contents of local databases, message registers [Msg(q)] and
    action registers [Act(q)] of an SWS (paper, Section 2).

    Tuples are stored interned ({!Repr.Ituple} in persistent hash buckets);
    the [_interned] variants expose that form so hot paths (index probes,
    CQ unification) can stay at the id level.  {!fold}/{!iter} run in
    unspecified (bucket) order; {!to_list} is sorted by {!Tuple.compare}. *)

type t

exception Arity_mismatch of string

val empty : int -> t
val is_empty : t -> bool
val arity : t -> int
val cardinal : t -> int
val mem : Tuple.t -> t -> bool

(** A per-value identity: every structurally-new relation carries a fresh
    stamp, unchanged tuple sets keep theirs.  {!Index} keys its cached hash
    indexes on it to detect staleness in O(1); it is not part of the value
    ({!equal} and {!compare} ignore it). *)
val stamp : t -> int

(** Raises {!Arity_mismatch} when the tuple arity differs. *)
val add : Tuple.t -> t -> t

(** Raises {!Arity_mismatch} when the tuple arity differs (aligned with
    {!add}: a wrong-arity removal is a bug, not a no-op). *)
val remove : Tuple.t -> t -> t
val of_list : int -> Tuple.t list -> t

(** Sorted by {!Tuple.compare}. *)
val to_list : t -> Tuple.t list

val mem_interned : Repr.Ituple.t -> t -> bool
val add_interned : Repr.Ituple.t -> t -> t
val remove_interned : Repr.Ituple.t -> t -> t
val fold_interned : (Repr.Ituple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter_interned : (Repr.Ituple.t -> unit) -> t -> unit
val exists_interned : (Repr.Ituple.t -> bool) -> t -> bool

(** All tuples as an array, memoized on first use (the relation is
    immutable).  Borrowed, not owned: callers must not mutate it.  This is
    the fast path for repeated scans — the CQ join re-walks the same
    relation once per outer binding, and an array walk beats the bucket-map
    walk by two calls per element. *)
val scan_array : t -> Repr.Ituple.t array
val singleton : Tuple.t -> t
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val filter : (Tuple.t -> bool) -> t -> t
val exists : (Tuple.t -> bool) -> t -> bool
val for_all : (Tuple.t -> bool) -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val subset : t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val product : t -> t -> t
val project : int list -> t -> t
val select : (Tuple.t -> bool) -> t -> t
val map_tuples : (Tuple.t -> Tuple.t) -> t -> t

(** Sorted list of the distinct values occurring in the relation. *)
val values : t -> Value.t list

(** Row-major flat array of interned ids, [cardinal * arity] long — the
    snapshot wire form.  Row order is unspecified; {!of_packed} rebuilds
    the same set from any order. *)
val dump : t -> int array

(** Bulk inverse of {!dump}: [of_packed ~arity ~n ids] rebuilds a relation
    from [n] rows of [arity] ids in one pass (single bucket-table build, no
    per-row persistent-map rebalancing).  Duplicate rows collapse.  Raises
    [Invalid_argument] when [Array.length ids <> arity * n]. *)
val of_packed : arity:int -> n:int -> int array -> t

val pp : t Fmt.t
val to_string : t -> string
