(* Tuples of data values.  Represented as immutable arrays; the comparison is
   lexicographic so tuples can live in sets and maps.  [intern]/[extern]
   convert to the packed id form ({!Repr.Ituple}) the relation and index
   layers store internally. *)

type t = Value.t array

let arity = Array.length

let of_list = Array.of_list
let to_list = Array.to_list

let make = Array.of_list

let get = Array.get

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i = la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let append = Array.append

let project_arr positions t = Array.map (fun i -> t.(i)) positions

let project positions t = project_arr (Array.of_list positions) t

let map = Array.map

let exists = Array.exists

let intern t = Repr.Ituple.of_array (Array.map Value.id t)

let extern it =
  Array.init (Repr.Ituple.arity it) (fun i ->
      Value.of_id (Repr.Ituple.get it i))

let pp ppf t =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") Value.pp) t

let to_string t = Fmt.str "%a" pp t
