(** Substitutions from variable names to data values. *)

type t

val empty : t
val find : string -> t -> Value.t option
val bind : string -> Value.t -> t -> t
val remove : string -> t -> t
val mem : string -> t -> bool
val of_list : (string * Value.t) list -> t
val to_list : t -> (string * Value.t) list

(** [extend x v s] is [Some] of [s] extended with [x -> v], or [None] when
    [x] is already bound to a different value. *)
val extend : string -> Value.t -> t -> t option

(** Id-level access for the interned evaluation path: [find_id]/[bind_id]/
    [extend_id] agree with their value-level counterparts through
    {!Value.id}. *)
val find_id : string -> t -> int option

val bind_id : string -> int -> t -> t
val extend_id : string -> int -> t -> t option

(** [apply_term s t] evaluates [t] under [s]; [None] on an unbound variable. *)
val apply_term : t -> Term.t -> Value.t option

val apply_term_exn : t -> Term.t -> Value.t
val equal : t -> t -> bool
val pp : t Fmt.t
