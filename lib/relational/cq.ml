(* Conjunctive queries with equality and inequality (the language CQ of the
   paper, Section 2).  A query is

       head(x1, ..., xn) :- A1, ..., Am, t1 <> t1', ..., tk <> tk'

   Equalities are normalized away at construction time by substitution.
   Containment with inequalities uses Klug's technique: instead of the single
   Chandra-Merlin canonical database, one canonical database per partition of
   the query's terms consistent with its inequalities. *)

module Smap = Map.Make (String)

type t = {
  head : Term.t list;
  body : Atom.t list;
  neqs : (Term.t * Term.t) list;
}

exception Unsatisfiable

exception Unsafe of string

let body_vars body =
  List.concat_map Atom.vars body |> List.sort_uniq String.compare

let term_vars ts =
  List.filter_map (function Term.Var x -> Some x | Term.Const _ -> None) ts

let vars q =
  body_vars q.body
  @ term_vars q.head
  @ term_vars (List.concat_map (fun (a, b) -> [ a; b ]) q.neqs)
  |> List.sort_uniq String.compare

let constants q =
  let of_terms ts =
    List.filter_map (function Term.Const v -> Some v | Term.Var _ -> None) ts
  in
  List.concat_map Atom.constants q.body
  @ of_terms q.head
  @ of_terms (List.concat_map (fun (a, b) -> [ a; b ]) q.neqs)
  |> List.sort_uniq Value.compare

(* Solve a set of equalities into a variable-to-term substitution (a simple
   union-find by repeated rewriting).  Raises [Unsatisfiable] on c = c'. *)
let solve_eqs eqs =
  let rec add subst = function
    | [] -> subst
    | (a, b) :: rest ->
      let resolve t =
        match t with
        | Term.Var x -> ( match Smap.find_opt x subst with Some t' -> t' | None -> t)
        | Term.Const _ -> t
      in
      let a = resolve a and b = resolve b in
      if Term.equal a b then add subst rest
      else begin
        match a, b with
        | Term.Const _, Term.Const _ -> raise Unsatisfiable
        | Term.Var x, t | t, Term.Var x ->
          let replace u = if Term.equal u (Term.Var x) then t else u in
          let subst = Smap.map replace subst in
          add (Smap.add x t subst) rest
      end
  in
  add Smap.empty eqs

let apply_var_subst subst q =
  let on_term = function
    | Term.Var x as t -> ( match Smap.find_opt x subst with Some t' -> t' | None -> t)
    | Term.Const _ as t -> t
  in
  {
    head = List.map on_term q.head;
    body = List.map (Atom.map_terms on_term) q.body;
    neqs = List.map (fun (a, b) -> (on_term a, on_term b)) q.neqs;
  }

let check_safety q =
  let bound = body_vars q.body in
  let check_term where t =
    match t with
    | Term.Const _ -> ()
    | Term.Var x ->
      if not (List.mem x bound) then
        raise (Unsafe (Printf.sprintf "variable %s in %s not bound by body" x where))
  in
  List.iter (check_term "head") q.head;
  List.iter
    (fun (a, b) ->
      check_term "inequality" a;
      check_term "inequality" b)
    q.neqs

let make ?(eqs = []) ?(neqs = []) ~head ~body () =
  let q = { head; body; neqs } in
  let q = if eqs = [] then q else apply_var_subst (solve_eqs eqs) q in
  check_safety q;
  q

let head_arity q = List.length q.head

let rename prefix q =
  let on_term = function
    | Term.Var x -> Term.Var (prefix ^ x)
    | Term.Const _ as t -> t
  in
  {
    head = List.map on_term q.head;
    body = List.map (Atom.map_terms on_term) q.body;
    neqs = List.map (fun (a, b) -> (on_term a, on_term b)) q.neqs;
  }

let schema_of q =
  List.fold_left
    (fun s a -> Schema.add a.Atom.rel (Atom.arity a) s)
    Schema.empty q.body

(* ------------------------------------------------------------------ *)
(* Evaluation                                                         *)
(* ------------------------------------------------------------------ *)

(* The evaluator runs at the id level: atoms are precompiled once per call
   into arrays of interned-constant ids and variable names, tuples stay
   packed ({!Repr.Ituple}), and unification compares ints.  Externing back to
   [Value.t] happens only at the [Subst] boundary for callers. *)
type iarg =
  | Ic of int (* interned constant *)
  | Iv of string

(* One body atom of the query plan: the atom, its compiled argument array,
   and its variables (for the greedy bound-variable scoring). *)
type plan_atom = {
  atom : Atom.t;
  iargs : iarg array;
  avars : string list;
}

let compile_atom atom =
  {
    atom;
    iargs =
      Array.of_list
        (List.map
           (function
             | Term.Const v -> Ic (Value.id v)
             | Term.Var x -> Iv x)
           atom.Atom.args);
    avars = Atom.vars atom;
  }

(* Top-level rather than nested in [unify_iargs]: a nested [rec go] closes
   over [iargs]/[it]/[n] and so allocates a closure per candidate tuple,
   which the scan join pays millions of times per query. *)
let rec unify_loop subst iargs it i n =
  if i = n then Some subst
  else
    match iargs.(i) with
    | Ic id ->
      if Repr.Ituple.get it i = id then unify_loop subst iargs it (i + 1) n
      else None
    | Iv x -> (
      match Subst.extend_id x (Repr.Ituple.get it i) subst with
      | Some subst -> unify_loop subst iargs it (i + 1) n
      | None -> None)

let unify_iargs subst iargs it =
  unify_loop subst iargs it 0 (Array.length iargs)

let atom_matches db subst pa =
  let rel = Database.find pa.atom.Atom.rel db in
  let arr = Relation.scan_array rel in
  let n = Array.length arr in
  let iargs = pa.iargs in
  let m = Array.length iargs in
  let rec go i acc =
    if i = n then acc
    else
      match unify_loop subst iargs arr.(i) 0 m with
      | Some s -> go (i + 1) (s :: acc)
      | None -> go (i + 1) acc
  in
  go 0 []

(* Positions of the atom whose id is already determined — a constant
   argument, or a variable bound by [subst] — with the determined ids.
   These form the probe key into the index. *)
let determined_positions subst pa =
  let n = Array.length pa.iargs in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match pa.iargs.(i) with
      | Ic id -> go (i + 1) ((i, id) :: acc)
      | Iv x -> (
        match Subst.find_id x subst with
        | Some id -> go (i + 1) ((i, id) :: acc)
        | None -> go (i + 1) acc)
  in
  go 0 []

(* Index-backed variant of [atom_matches]: probe the per-database hash index
   on the atom's determined positions instead of folding the full relation.
   [unify_iargs] still runs on the probed tuples, to bind the free positions
   and enforce repeated-variable constraints the key cannot express. *)
let atom_matches_indexed db subst pa =
  match determined_positions subst pa with
  | [] -> atom_matches db subst pa
  | bound ->
    let rel = Database.find pa.atom.Atom.rel db in
    let positions = List.map fst bound and key = List.map snd bound in
    let tuples =
      Index.probe (Database.index_store db) ~name:pa.atom.Atom.rel rel
        ~positions key
    in
    List.fold_left
      (fun acc it ->
        match unify_iargs subst pa.iargs it with
        | Some s -> s :: acc
        | None -> acc)
      [] tuples

let compile_term = function
  | Term.Const v -> Ic (Value.id v)
  | Term.Var x -> Iv x

let iarg_id subst = function
  | Ic id -> Some id
  | Iv x -> Subst.find_id x subst

let neqs_hold subst neqs =
  List.for_all
    (fun (a, b) ->
      match iarg_id subst a, iarg_id subst b with
      | Some ia, Some ib -> ia <> ib
      | _ -> true (* unbound: cannot refute yet *))
    neqs

let bound_var_count subst pa =
  List.length (List.filter (fun x -> Subst.mem x subst) pa.avars)

(* Greedy sideways-information-passing: always expand the atom with the most
   already-bound variables (breaking ties towards smaller relations), so joins
   stay selective.  [`Indexed] keeps the greedy atom order but answers each
   expansion with a hash-index probe instead of a full relation scan;
   [`Naive] keeps the textual atom order.  The gaps between the three are
   ablations in bench/. *)
type strategy = [ `Greedy | `Indexed | `Naive ]

(* Remove exactly the first occurrence (physically) of [b].  A plain
   [List.filter] on physical inequality would drop *every* occurrence at
   once when a body atom is shared, silently shortening the join. *)
let remove_one_atom b atoms =
  let rec go = function
    | [] -> []
    | a :: rest -> if a == b then rest else a :: go rest
  in
  go atoms

(* [remove_one_atom] works on plan atoms too: the plan list preserves the
   physical identity of its records, so the same first-occurrence discipline
   applies. *)
let remove_one_plan b atoms =
  let rec go = function
    | [] -> []
    | a :: rest -> if a == b then rest else a :: go rest
  in
  go atoms

(* Minimum number of top-level join branches before the search forks onto
   the domain pool.  Below this the fork/join overhead dwarfs the branch
   work (typical test queries have a handful of matches); the bench join
   series runs thousands of branches. *)
let parallel_fanout_threshold = 16

let eval_substs ?(strategy = `Indexed) q db =
  let plan = List.map compile_atom q.body in
  let neqs = List.map (fun (a, b) -> (compile_term a, compile_term b)) q.neqs in
  let pick subst atoms =
    match strategy, atoms with
    | _, [] -> None
    | `Naive, a :: rest -> Some (a, rest)
    | (`Greedy | `Indexed), _ ->
      let score a =
        ( -bound_var_count subst a,
          Relation.cardinal (Database.find a.atom.Atom.rel db) )
      in
      let best =
        List.fold_left
          (fun acc a ->
            match acc with
            | None -> Some a
            | Some b -> if score a < score b then Some a else acc)
          None atoms
      in
      Option.map (fun b -> (b, remove_one_plan b atoms)) best
  in
  let matches =
    match strategy with
    | `Indexed -> atom_matches_indexed
    | `Greedy | `Naive -> atom_matches
  in
  let rec search subst atoms acc =
    if not (neqs_hold subst neqs) then acc
    else
      match pick subst atoms with
      | None -> if neqs_hold subst neqs then subst :: acc else acc
      | Some (atom, rest) ->
        List.fold_left
          (fun acc subst' -> search subst' rest acc)
          acc
          (matches db subst atom)
  in
  (* Parallel mode forks the search at the root: the first picked atom's
     matches (one per tuple of the outer relation, in scan — i.e. bucket —
     order) each seed an independent branch, branches run across the pool,
     and branch results are concatenated in branch order.  Since
     [search s rest acc = search s rest [] @ acc], the reassembled list is
     element-for-element the sequential one, for any strategy and any job
     count — which is what keeps the three strategies agreement-testable
     against each other and against [--jobs 1]. *)
  let jobs = Par.Pool.effective_jobs () in
  if jobs <= 1 then search Subst.empty plan []
  else if not (neqs_hold Subst.empty neqs) then []
  else
    match pick Subst.empty plan with
    | None -> if neqs_hold Subst.empty neqs then [ Subst.empty ] else []
    | Some (atom0, rest) ->
      let ms = matches db Subst.empty atom0 in
      if List.length ms < parallel_fanout_threshold then
        List.fold_left (fun acc subst' -> search subst' rest acc) [] ms
      else
        let branches =
          Par.Pool.parallel_list_map (fun subst' -> search subst' rest []) ms
        in
        List.fold_left (fun acc branch -> branch @ acc) [] branches

let eval ?strategy q db =
  Obs.Trace.span "cq_eval" @@ fun () ->
  let substs = eval_substs ?strategy q db in
  (* head compiled once; answer tuples are assembled directly from ids *)
  let head = Array.of_list (List.map compile_term q.head) in
  List.fold_left
    (fun rel subst ->
      let ids =
        Array.map
          (fun a ->
            match iarg_id subst a with
            | Some id -> id
            | None ->
              invalid_arg "Cq.eval: unbound head variable (unsafe query)")
          head
      in
      Relation.add_interned (Repr.Ituple.of_array ids) rel)
    (Relation.empty (head_arity q))
    substs

(* ------------------------------------------------------------------ *)
(* Canonical databases and containment                                *)
(* ------------------------------------------------------------------ *)

(* Freeze the query: map each variable to a fresh labelled null and read the
   body off as a database (the Chandra-Merlin canonical database).  The
   supply defaults to a private one per call; callers that merge canonical
   databases from several freezes must pass a shared supply so nulls stay
   pairwise distinct. *)
let freeze ?supply q =
  let supply =
    match supply with Some s -> s | None -> Value.Fresh.supply ()
  in
  let subst =
    List.fold_left
      (fun s x -> Subst.bind x (Value.Fresh.next supply) s)
      Subst.empty (vars q)
  in
  (subst, q)

let ground_under ~schema subst q =
  (* ground at the id level: the substitution already stores ids, so atoms
     become interned tuples without a Value round trip per argument *)
  let term_id = function
    | Term.Const v -> Value.id v
    | Term.Var x -> (
      match Subst.find_id x subst with
      | Some i -> i
      | None -> invalid_arg "Subst.apply_term_exn: unbound variable")
  in
  let tuple_of args = Repr.Ituple.of_list (List.map term_id args) in
  let db =
    List.fold_left
      (fun db atom ->
        let rel = Database.find atom.Atom.rel db in
        Database.set atom.Atom.rel
          (Relation.add_interned (tuple_of atom.Atom.args) rel)
          db)
      (Database.empty schema) q.body
  in
  let goal = Tuple.extern (tuple_of q.head) in
  (db, goal)

(* All partitions of the query's variables into equivalence classes, where a
   class may be identified with one of the query's constants; distinct
   constants are never identified.  Each partition is returned as a valuation
   of the variables (class representatives are the constant, or a fresh
   labelled null), filtered for consistency with the query's inequalities.
   This is Klug's complete test set for containment of CQs with <>.  As with
   {!freeze}, the supply defaults to a private one per call. *)
let partitions ?supply q =
  let supply =
    match supply with Some s -> s | None -> Value.Fresh.supply ()
  in
  let xs = vars q in
  let consts = List.map Value.id (constants q) in
  let neqs = List.map (fun (a, b) -> (compile_term a, compile_term b)) q.neqs in
  (* classes and bindings are ids throughout; with every variable bound at a
     leaf, [neqs_hold] decides each inequality by one int comparison *)
  let rec go xs classes subst acc =
    match xs with
    | [] -> if neqs_hold subst neqs then subst :: acc else acc
    | x :: rest ->
      let acc =
        List.fold_left
          (fun acc repr -> go rest classes (Subst.bind_id x repr subst) acc)
          acc classes
      in
      let fresh = Value.id (Value.Fresh.next supply) in
      go rest (fresh :: classes) (Subst.bind_id x fresh subst) acc
  in
  go xs consts Subst.empty []

let combined_schema q1 q2s =
  List.fold_left
    (fun s q -> Schema.union s (schema_of q))
    (schema_of q1) q2s

(* [contained_in_many q qs]: is q contained in the union of the queries [qs]?
   Complete for CQs with <> (Klug).  When neither side uses <>, a single
   canonical database suffices; we special-case that for speed. *)
let contained_in_many q1 q2s =
  Obs.Trace.span "cq_containment" @@ fun () ->
  let q2s = List.filter (fun q2 -> head_arity q2 = head_arity q1) q2s in
  if q2s = [] then
    (* Containment in the empty union holds only if q1 is unsatisfiable. *)
    partitions q1 = []
  else begin
    let schema = combined_schema q1 q2s in
    (* one supply across every canonical database built in this test *)
    let supply = Value.Fresh.supply () in
    let check subst =
      let db, goal = ground_under ~schema subst q1 in
      List.exists (fun q2 -> Relation.mem goal (eval q2 db)) q2s
    in
    let no_neqs = q1.neqs = [] && List.for_all (fun q -> q.neqs = []) q2s in
    if no_neqs then
      let subst, _ = freeze ~supply q1 in
      check subst
    else List.for_all check (partitions ~supply q1)
  end

let contained_in q1 q2 = contained_in_many q1 [ q2 ]

(* A database on which q1 produces a tuple that no query of [q2s] does:
   the canonical database of the first failing partition. *)
let non_containment_witness q1 q2s =
  let q2s = List.filter (fun q2 -> head_arity q2 = head_arity q1) q2s in
  let schema = combined_schema q1 q2s in
  let refutes subst =
    let db, goal = ground_under ~schema subst q1 in
    if List.exists (fun q2 -> Relation.mem goal (eval q2 db)) q2s then None
    else Some (db, goal)
  in
  List.find_map refutes (partitions q1)

(* Sound but incomplete in the presence of <>: single frozen database only.
   Exposed for the containment ablation. *)
let contained_in_frozen_only q1 q2 =
  if head_arity q1 <> head_arity q2 then false
  else
    let schema = combined_schema q1 [ q2 ] in
    let subst, _ = freeze q1 in
    let db, goal = ground_under ~schema subst q1 in
    Relation.mem goal (eval q2 db)

let equivalent q1 q2 = contained_in q1 q2 && contained_in q2 q1

(* Core computation: greedily drop redundant body atoms while the query stays
   equivalent.  Safety is preserved by refusing drops that unbind head or
   inequality variables. *)
let minimize q =
  let needed = term_vars q.head @ term_vars (List.concat_map (fun (a, b) -> [ a; b ]) q.neqs) in
  let safe_without body =
    let bound = body_vars body in
    List.for_all (fun x -> List.mem x bound) needed
  in
  let rec drop_one kept = function
    | [] -> None
    | atom :: rest ->
      let body' = List.rev_append kept rest in
      if body' <> [] && safe_without body' then begin
        let q' = { q with body = body' } in
        if equivalent q q' then Some q' else drop_one (atom :: kept) rest
      end
      else drop_one (atom :: kept) rest
  in
  let rec fix q =
    match drop_one [] q.body with
    | Some q' -> fix q'
    | None -> q
  in
  fix q

let pp ppf q =
  let pp_neq ppf (a, b) = Fmt.pf ppf "%a <> %a" Term.pp a Term.pp b in
  Fmt.pf ppf "ans(%a) :- %a%s%a"
    Fmt.(list ~sep:(any ", ") Term.pp)
    q.head
    Fmt.(list ~sep:(any ", ") Atom.pp)
    q.body
    (if q.neqs = [] then "" else ", ")
    Fmt.(list ~sep:(any ", ") pp_neq)
    q.neqs
