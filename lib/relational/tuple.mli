(** Tuples of data values, ordered lexicographically. *)

type t = Value.t array

val arity : t -> int
val of_list : Value.t list -> t
val to_list : t -> Value.t list
val make : Value.t list -> t
val get : t -> int -> Value.t
val compare : t -> t -> int
val equal : t -> t -> bool
val append : t -> t -> t

(** [project positions t] keeps the components of [t] at the given 0-based
    [positions], in order (positions may repeat). *)
val project : int list -> t -> t

(** Like {!project} with the positions array hoisted: allocate it once per
    query plan, reuse it per tuple. *)
val project_arr : int array -> t -> t

val map : (Value.t -> Value.t) -> t -> t
val exists : (Value.t -> bool) -> t -> bool

(** Packed id form: [extern (intern t)] is [t] up to {!Value.equal};
    {!Repr.Ituple.equal} on interned forms coincides with {!equal}. *)
val intern : t -> Repr.Ituple.t

val extern : Repr.Ituple.t -> t

val pp : t Fmt.t
val to_string : t -> string
