(* Finite relations: sets of tuples of a fixed arity.  These are the contents
   of local databases, message registers Msg(q) and action registers Act(q)
   (Section 2 of the paper). *)

module Tuple_set = Set.Make (Tuple)

type t = {
  arity : int;
  tuples : Tuple_set.t;
  size : int;
      (* |tuples|, maintained so [cardinal] is O(1): the greedy join planner
         scores every candidate atom by relation size at every search node,
         and Set.cardinal's O(n) walk made that scoring quadratic. *)
  stamp : int;
}

exception Arity_mismatch of string

let check_arity op arity t =
  if Tuple.arity t <> arity then
    raise
      (Arity_mismatch
         (Printf.sprintf "%s: expected arity %d, got tuple of arity %d" op
            arity (Tuple.arity t)))

(* Every structurally-new relation value gets a fresh stamp, so caches (the
   Index layer) can detect staleness by an integer comparison instead of a
   set comparison.  Two relations with equal tuple sets but different stamps
   are still [equal]; the stamp is an identity, not part of the value. *)
let stamp_counter = ref 0

let build_sized arity tuples size =
  incr stamp_counter;
  { arity; tuples; size; stamp = !stamp_counter }

let build arity tuples = build_sized arity tuples (Tuple_set.cardinal tuples)

let stamp r = r.stamp

let empty arity = build_sized arity Tuple_set.empty 0

let is_empty r = Tuple_set.is_empty r.tuples

let arity r = r.arity

let cardinal r = r.size

let mem t r = Tuple_set.mem t r.tuples

let add t r =
  check_arity "add" r.arity t;
  let tuples = Tuple_set.add t r.tuples in
  if tuples == r.tuples then r else build_sized r.arity tuples (r.size + 1)

let remove t r =
  check_arity "remove" r.arity t;
  let tuples = Tuple_set.remove t r.tuples in
  if tuples == r.tuples then r else build_sized r.arity tuples (r.size - 1)

let of_list arity ts = List.fold_left (fun r t -> add t r) (empty arity) ts

let to_list r = Tuple_set.elements r.tuples

let singleton t = build_sized (Tuple.arity t) (Tuple_set.singleton t) 1

let fold f r init = Tuple_set.fold f r.tuples init

let iter f r = Tuple_set.iter f r.tuples

let filter p r = build r.arity (Tuple_set.filter p r.tuples)

let exists p r = Tuple_set.exists p r.tuples

let for_all p r = Tuple_set.for_all p r.tuples

let equal a b = a.arity = b.arity && Tuple_set.equal a.tuples b.tuples

let compare a b =
  let c = Int.compare a.arity b.arity in
  if c <> 0 then c else Tuple_set.compare a.tuples b.tuples

let subset a b = a.arity = b.arity && Tuple_set.subset a.tuples b.tuples

let union a b =
  if a.arity <> b.arity then raise (Arity_mismatch "union")
  else build a.arity (Tuple_set.union a.tuples b.tuples)

let inter a b =
  if a.arity <> b.arity then raise (Arity_mismatch "inter")
  else build a.arity (Tuple_set.inter a.tuples b.tuples)

let diff a b =
  if a.arity <> b.arity then raise (Arity_mismatch "diff")
  else build a.arity (Tuple_set.diff a.tuples b.tuples)

let product a b =
  let tuples =
    Tuple_set.fold
      (fun ta acc ->
        Tuple_set.fold
          (fun tb acc -> Tuple_set.add (Tuple.append ta tb) acc)
          b.tuples acc)
      a.tuples Tuple_set.empty
  in
  build (a.arity + b.arity) tuples

let project positions r =
  let tuples =
    Tuple_set.fold
      (fun t acc -> Tuple_set.add (Tuple.project positions t) acc)
      r.tuples Tuple_set.empty
  in
  build (List.length positions) tuples

let select p r = filter p r

let map_tuples f r =
  fold (fun t acc -> add (f t) acc) r (empty r.arity)

(* All values occurring in the relation: part of the active domain. *)
let values r =
  fold
    (fun t acc -> Array.fold_left (fun acc v -> v :: acc) acc t)
    r []
  |> List.sort_uniq Value.compare

let pp ppf r =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any "; ") Tuple.pp) (to_list r)

let to_string r = Fmt.str "%a" pp r
