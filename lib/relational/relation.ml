(* Finite relations: sets of tuples of a fixed arity.  These are the contents
   of local databases, message registers Msg(q) and action registers Act(q)
   (Section 2 of the paper).

   Internally a relation stores interned tuples ({!Repr.Ituple}) in a
   persistent map from tuple hash to bucket: membership is one map lookup
   plus an id-array walk instead of a balanced-tree descent with element-wise
   [Value.compare] at every node.  Persistence matters — semi-naive datalog
   keeps many functional versions of each delta alive per round — which is
   why this is a hash-bucketed [Map.Make (Int)] rather than a mutable
   hashtable.  The public interface still speaks [Tuple.t]; [to_list] sorts,
   so printed output and list-returning call sites stay deterministic. *)

module Imap = Map.Make (Int)

type t = {
  arity : int;
  buckets : Repr.Ituple.t list Imap.t; (* Ituple.hash -> tuples with it *)
  size : int;
      (* |tuples|, maintained so [cardinal] is O(1): the greedy join planner
         scores every candidate atom by relation size at every search node,
         and a full walk would make that scoring quadratic. *)
  stamp : int;
  scan : Repr.Ituple.t array option Atomic.t;
      (* memoized packed iteration order.  The scan join re-walks the same
         relation value once per outer binding, and walking the bucket map
         costs two extra calls per element over an array walk; the record is
         otherwise immutable.  Atomic because parallel join branches share
         the relation: racing fillers each build the same (deterministic)
         array from the persistent buckets, and compare-and-set keeps the
         first so every later reader shares one copy. *)
}

exception Arity_mismatch of string

let check_arity op arity k =
  if k <> arity then
    raise
      (Arity_mismatch
         (Printf.sprintf "%s: expected arity %d, got tuple of arity %d" op
            arity k))

(* Every structurally-new relation value gets a fresh stamp, so caches (the
   Index layer) can detect staleness by an integer comparison instead of a
   set comparison.  Two relations with equal tuple sets but different stamps
   are still [equal]; the stamp is an identity, not part of the value.
   Atomic: two domains building relations concurrently must never mint the
   same stamp, or the index layer could serve one relation's tables for the
   other. *)
let stamp_counter = Atomic.make 0

let build_sized arity buckets size =
  let stamp = Atomic.fetch_and_add stamp_counter 1 + 1 in
  { arity; buckets; size; stamp; scan = Atomic.make None }

let stamp r = r.stamp

let empty arity = build_sized arity Imap.empty 0

let is_empty r = r.size = 0

let arity r = r.arity

let cardinal r = r.size

let bucket_of it r =
  Option.value ~default:[] (Imap.find_opt (Repr.Ituple.hash it) r.buckets)

let mem_interned it r = List.exists (Repr.Ituple.equal it) (bucket_of it r)

let mem t r = mem_interned (Tuple.intern t) r

let add_interned it r =
  check_arity "add" r.arity (Repr.Ituple.arity it);
  let bucket = bucket_of it r in
  if List.exists (Repr.Ituple.equal it) bucket then r
  else
    build_sized r.arity
      (Imap.add (Repr.Ituple.hash it) (it :: bucket) r.buckets)
      (r.size + 1)

let add t r = add_interned (Tuple.intern t) r

let remove_interned it r =
  check_arity "remove" r.arity (Repr.Ituple.arity it);
  let bucket = bucket_of it r in
  if not (List.exists (Repr.Ituple.equal it) bucket) then r
  else
    let bucket' = List.filter (fun it' -> not (Repr.Ituple.equal it it')) bucket in
    let buckets =
      if bucket' = [] then Imap.remove (Repr.Ituple.hash it) r.buckets
      else Imap.add (Repr.Ituple.hash it) bucket' r.buckets
    in
    build_sized r.arity buckets (r.size - 1)

let remove t r = remove_interned (Tuple.intern t) r

let of_list arity ts = List.fold_left (fun r t -> add t r) (empty arity) ts

let fold_interned f r init =
  (* both closures hoisted out of the per-bucket path: the CQ scan join
     visits millions of buckets, and a closure allocation per bucket was
     measurable against the seed evaluator *)
  let g acc it = f it acc in
  Imap.fold (fun _ bucket acc -> List.fold_left g acc bucket) r.buckets init

let scan_array r =
  match Atomic.get r.scan with
  | Some arr -> arr
  | None ->
    let arr =
      Array.of_list (fold_interned (fun it acc -> it :: acc) r [])
    in
    if Atomic.compare_and_set r.scan None (Some arr) then arr
    else (
      match Atomic.get r.scan with
      | Some arr -> arr (* lost the race; share the winner's copy *)
      | None -> arr)

let iter_interned f r =
  Imap.iter (fun _ bucket -> List.iter f bucket) r.buckets

(* Iteration order of [fold]/[iter] is unspecified (bucket order); the
   sorted order lives in [to_list]. *)
let fold f r init = fold_interned (fun it acc -> f (Tuple.extern it) acc) r init

let iter f r = fold (fun t () -> f t) r ()

let to_list r =
  List.sort Tuple.compare (fold (fun t acc -> t :: acc) r [])

let singleton t = add t (empty (Tuple.arity t))

let filter p r =
  fold_interned
    (fun it acc -> if p (Tuple.extern it) then add_interned it acc else acc)
    r (empty r.arity)

let exists_interned p r =
  (* Imap.exists short-circuits on the first matching bucket *)
  Imap.exists (fun _ bucket -> List.exists p bucket) r.buckets

let exists p r = exists_interned (fun it -> p (Tuple.extern it)) r

let for_all p r = not (exists (fun t -> not (p t)) r)

let subset a b =
  a.arity = b.arity
  && a.size <= b.size
  && fold_interned (fun it acc -> acc && mem_interned it b) a true

let equal a b = a.arity = b.arity && a.size = b.size && subset a b

(* Any total order consistent with [equal] works here: interning is
   injective and process-global, so comparing sorted id-tuples is stable
   within a run. *)
let compare a b =
  let c = Int.compare a.arity b.arity in
  if c <> 0 then c
  else
    let sorted r =
      List.sort Repr.Ituple.compare (fold_interned (fun it acc -> it :: acc) r [])
    in
    List.compare Repr.Ituple.compare (sorted a) (sorted b)

let union a b =
  if a.arity <> b.arity then raise (Arity_mismatch "union")
  else if a.size = 0 then b
  else if b.size = 0 then a
  else
    (* Imap.union takes whole subtrees from whichever side owns a key range,
       so disjoint regions are shared, not re-inserted element by element
       (the Set.union behaviour the seed representation got for free).  The
       callback only runs on hash collisions between the two sides. *)
    let dups = ref 0 in
    let buckets =
      Imap.union
        (fun _ b1 b2 ->
          let fresh =
            List.filter
              (fun it -> not (List.exists (Repr.Ituple.equal it) b2))
              b1
          in
          dups := !dups + (List.length b1 - List.length fresh);
          Some (List.rev_append fresh b2))
        a.buckets b.buckets
    in
    build_sized a.arity buckets (a.size + b.size - !dups)

let inter a b =
  if a.arity <> b.arity then raise (Arity_mismatch "inter")
  else if a.size = 0 then a
  else if b.size = 0 then b
  else
    let small, big = if a.size <= b.size then a, b else b, a in
    fold_interned
      (fun it acc -> if mem_interned it big then add_interned it acc else acc)
      small (empty a.arity)

let diff a b =
  if a.arity <> b.arity then raise (Arity_mismatch "diff")
  else if a.size = 0 || b.size = 0 then a
  else
    fold_interned
      (fun it acc -> if mem_interned it b then acc else add_interned it acc)
      a (empty a.arity)

let product a b =
  fold_interned
    (fun ita acc ->
      fold_interned
        (fun itb acc -> add_interned (Repr.Ituple.append ita itb) acc)
        b acc)
    a
    (empty (a.arity + b.arity))

let project positions r =
  let pos = Array.of_list positions in
  fold_interned
    (fun it acc -> add_interned (Repr.Ituple.project pos it) acc)
    r
    (empty (Array.length pos))

let select p r = filter p r

let map_tuples f r =
  fold (fun t acc -> add (f t) acc) r (empty r.arity)

(* All values occurring in the relation: part of the active domain. *)
let values r =
  fold_interned
    (fun it acc -> Repr.Ituple.fold (fun id acc -> id :: acc) it acc)
    r []
  |> List.sort_uniq Int.compare
  |> List.map Value.of_id
  |> List.sort Value.compare

(* ------------------------------------------------------------------ *)
(* Packed form (snapshots)                                            *)
(* ------------------------------------------------------------------ *)

(* Row-major flat id array, [cardinal r * arity r] long.  Row order is the
   bucket-map order — unspecified but irrelevant: [of_packed] rebuilds the
   same set whatever the order, and [equal] ignores it. *)
let dump r =
  let ids = Array.make (r.size * r.arity) 0 in
  let pos = ref 0 in
  iter_interned
    (fun it ->
      for j = 0 to r.arity - 1 do
        ids.(!pos) <- Repr.Ituple.get it j;
        incr pos
      done)
    r;
  ids

(* Bulk inverse of [dump]: one pass groups rows into hash buckets in a
   mutable table (dedup within bucket), then the persistent map is built
   once per bucket — n map insertions total instead of n re-balancing
   [add_interned] rounds each allocating an intermediate record. *)
let of_packed ~arity ~n ids =
  if arity < 0 || n < 0 || Array.length ids <> arity * n then
    invalid_arg "Relation.of_packed: flat array length <> arity * n";
  let tbl = Hashtbl.create (max 16 (min n 65536)) in
  let size = ref 0 in
  for i = 0 to n - 1 do
    let it = Repr.Ituple.of_array (Array.sub ids (i * arity) arity) in
    let h = Repr.Ituple.hash it in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt tbl h) in
    if not (List.exists (Repr.Ituple.equal it) bucket) then begin
      Hashtbl.replace tbl h (it :: bucket);
      incr size
    end
  done;
  let buckets = Hashtbl.fold Imap.add tbl Imap.empty in
  build_sized arity buckets !size

let pp ppf r =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any "; ") Tuple.pp) (to_list r)

let to_string r = Fmt.str "%a" pp r
