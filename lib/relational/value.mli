(** Data values from the infinite domain [D] of the paper (Section 2).

    [Frozen] values are the labelled nulls minted by {!Fresh} supplies when
    queries are frozen into canonical databases; they are a distinct
    constructor, so no [Int] or [Str] a user builds can ever satisfy
    {!is_frozen}. *)

type t =
  | Int of int
  | Str of string
  | Frozen of int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val int : int -> t
val str : string -> t

val pp : t Fmt.t
val to_string : t -> string

(** Scoped supplies of labelled nulls.  Values from one supply are pairwise
    distinct; supplies are independent, so a procedure that merges canonical
    databases from several freezes must thread one supply through all of
    them. *)
module Fresh : sig
  type supply

  val supply : unit -> supply

  (** [next s] is a [Frozen] value distinct from every earlier [next s]. *)
  val next : supply -> t
end

(** [is_frozen v] holds iff [v] is a labelled null (a [Frozen] value). *)
val is_frozen : t -> bool

(** [id v] interns [v] in the process-wide table: dense, stable, injective.
    [equal v w] iff [id v = id w]. *)
val id : t -> int

(** Total inverse of {!id} on issued ids. *)
val of_id : int -> t

(** Number of distinct values interned so far (an [Engine.Stats] gauge). *)
val interner_size : unit -> int

(** Every interned value in id order ([interner_dump ()].(i) has id [i]).
    Contains no [Frozen] values (those live in the negative id range and
    never enter the table).  The snapshot layer persists this array and
    re-interns it front to back on load to re-establish id stability. *)
val interner_dump : unit -> t array
