(** Lazily-built hash indexes over relations, keyed on argument positions.

    A store memoizes, per relation name, tables mapping the interned ids at
    a set of positions to the (interned) tuples carrying them.  Staleness is
    detected through {!Relation.stamp}, so a store can be shared across
    functional updates of a {!Database.t}: only relations that actually
    changed are re-indexed. *)

type t

val create : unit -> t

(** [probe store ~name rel ~positions key] is every tuple of [rel] whose
    value ids at [positions] (0-based, strictly increasing) equal [key]
    (a {!Value.id} list), building and caching the index for
    [(name, positions)] on first use.  With [positions = []] it degrades to
    the full tuple list (unspecified order). *)
val probe :
  t -> name:string -> Relation.t -> positions:int list -> int list ->
  Repr.Ituple.t list

(** Number of distinct index tables currently cached (for tests/stats). *)
val cached_tables : t -> int
