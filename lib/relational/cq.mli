(** Conjunctive queries with equality and inequality (the language CQ of the
    paper, Section 2).

    Equalities are normalized away at construction.  Containment in the
    presence of [<>] uses Klug's partition technique and is complete. *)

type t = private {
  head : Term.t list;
  body : Atom.t list;
  neqs : (Term.t * Term.t) list;
}

exception Unsatisfiable
(** Raised by {!make} when the equalities identify two distinct constants. *)

exception Unsafe of string
(** Raised by {!make} when a head or inequality variable is not bound by the
    body. *)

val make :
  ?eqs:(Term.t * Term.t) list ->
  ?neqs:(Term.t * Term.t) list ->
  head:Term.t list ->
  body:Atom.t list ->
  unit ->
  t

val head_arity : t -> int
val vars : t -> string list
val constants : t -> Value.t list

(** Prefix every variable name; used to rename queries apart. *)
val rename : string -> t -> t

(** Substitute variables by terms throughout head, body and inequalities. *)
val apply_var_subst : Term.t Map.Make(String).t -> t -> t

(** Schema induced by the body atoms. *)
val schema_of : t -> Schema.t

(** [`Indexed] (the default) is greedy sideways-information-passing with
    hash-index probes against the database's {!Index} store; [`Greedy] is the
    same join order over full relation scans; [`Naive] scans in textual atom
    order.  All three return the same relations. *)
type strategy = [ `Greedy | `Indexed | `Naive ]

(** All satisfying valuations of the body over [db]. *)
val eval_substs : ?strategy:strategy -> t -> Database.t -> Subst.t list

(** The answer relation of the query over [db]. *)
val eval : ?strategy:strategy -> t -> Database.t -> Relation.t

(** Remove exactly the first (physical) occurrence of the atom.  Exposed for
    white-box regression testing of the join loop's atom bookkeeping: a
    duplicated body atom must be consumed one occurrence at a time. *)
val remove_one_atom : Atom.t -> Atom.t list -> Atom.t list

(** Freeze variables to labelled nulls (Chandra-Merlin canonical database
    valuation).  [supply] defaults to a private supply per call; pass a
    shared one when canonical databases from several freezes are merged. *)
val freeze : ?supply:Value.Fresh.supply -> t -> Subst.t * t

(** [ground_under ~schema subst q] is the canonical database of [q] under the
    valuation [subst], together with the frozen head tuple. *)
val ground_under : schema:Schema.t -> Subst.t -> t -> Database.t * Tuple.t

(** All valuations arising from partitions of the query's variables consistent
    with its inequalities (Klug's test set).  [supply] as in {!freeze}. *)
val partitions : ?supply:Value.Fresh.supply -> t -> Subst.t list

(** [contained_in_many q qs]: is [q] contained in the union of [qs]?
    Complete for CQs with [<>]. *)
val contained_in_many : t -> t list -> bool

val contained_in : t -> t -> bool

(** A canonical database on which the query produces a tuple that none of
    [qs] does; [None] when containment holds. *)
val non_containment_witness :
  t -> t list -> (Database.t * Tuple.t) option

(** Single-canonical-database test: sound, complete only without [<>].
    Exposed for the containment ablation. *)
val contained_in_frozen_only : t -> t -> bool

val equivalent : t -> t -> bool

(** Drop redundant body atoms while preserving equivalence (the core). *)
val minimize : t -> t

val pp : t Fmt.t
