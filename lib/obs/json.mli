(** A minimal JSON tree, serializer and parser.

    The container pins no JSON library, and the observability layer needs
    both directions: the trace exporters and the bench report *write*
    JSON, and the test suite and CI *parse* it back to check the output is
    well-formed and round-trips.  This module is deliberately small: no
    streaming, no numbers beyond OCaml [int]/[float], object keys kept in
    insertion order. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact serialization (no insignificant whitespace), with full string
    escaping.  Floats print via ["%.17g"] so parsing them back is exact;
    non-finite floats serialize as [null] (JSON has no representation). *)
val to_string : t -> string

(** [to_channel oc j] writes {!to_string} followed by a newline. *)
val to_channel : out_channel -> t -> unit

val pp : t Fmt.t

(** Parse one JSON value (leading/trailing whitespace allowed).
    [Error msg] carries a position-annotated message. *)
val of_string : string -> (t, string) result

(** {2 Accessors (total; [None] on shape mismatch)} *)

val member : string -> t -> t option
val to_list_opt : t -> t list option
val to_int_opt : t -> int option
val to_float_opt : t -> float option
val to_string_opt : t -> string option
