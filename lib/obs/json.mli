(** A minimal JSON tree, serializer and parser.

    The container pins no JSON library, and the observability layer needs
    both directions: the trace exporters and the bench report *write*
    JSON, and the test suite and CI *parse* it back to check the output is
    well-formed and round-trips.  This module is deliberately small: no
    streaming, no numbers beyond OCaml [int]/[float], object keys kept in
    insertion order. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact serialization (no insignificant whitespace), with full string
    escaping.  Floats print via ["%.17g"] so parsing them back is exact;
    non-finite floats serialize as [null] (JSON has no representation). *)
val to_string : t -> string

(** [to_channel oc j] writes {!to_string} followed by a newline. *)
val to_channel : out_channel -> t -> unit

val pp : t Fmt.t

(** Nesting depth {!of_string} accepts by default (512 container levels). *)
val default_max_depth : int

(** Parse one JSON value (leading/trailing whitespace allowed).
    [Error msg] carries a position-annotated message.

    The parser is strict enough for untrusted input — [swsd] runs it on
    raw wire bytes: [\u] escapes must be exactly 4 hex digits (no OCaml
    integer-literal leniency), surrogate pairs decode to 4-byte UTF-8 and
    lone surrogates are rejected, numbers follow the RFC 8259 grammar
    exactly (no leading [+], no lone [-]/[.], no leading zeros), and
    values nested deeper than [max_depth] (default {!default_max_depth})
    fail with a clean error instead of overflowing the stack. *)
val of_string : ?max_depth:int -> string -> (t, string) result

(** {2 Accessors (total; [None] on shape mismatch)} *)

val member : string -> t -> t option
val to_list_opt : t -> t list option
val to_int_opt : t -> int option
val to_float_opt : t -> float option
val to_string_opt : t -> string option
