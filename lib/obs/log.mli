(** Leveled structured logging for the long-running binaries.

    One process-wide logger, mutex-guarded, writing one line per record
    to a configurable channel (stderr by default) in either JSON
    (machines: one object per line with [ts]/[level]/[msg] plus the
    record's fields) or text (humans: [ts LEVEL msg key=value ...]).

    The default level is {!Warn}: a library that embeds a daemon (the
    tests, the bench) stays quiet unless something is actually wrong;
    the [swsd] binary raises it to [Info] via [--log-level].  Below-level
    records cost one atomic load and a branch — fields are not even
    evaluated by {!debug}/{!info} callers that guard with {!would_log}
    (the combinators here always evaluate their arguments; guard hot
    paths explicitly). *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> level option

val set_level : level -> unit
val level : unit -> level

val would_log : level -> bool

type format = Json | Text

val set_format : format -> unit
val format : unit -> format

val set_channel : out_channel -> unit
(** Where records go (default [stderr]).  The channel is flushed after
    every record, so lines survive a crash. *)

type field = string * Json.t

val log : level -> ?fields:field list -> string -> unit
(** Emit one record if [level] clears the threshold.  In JSON format the
    record is [{"ts": ..., "level": ..., "msg": ..., <fields>}] with
    [ts] an ISO-8601 UTC timestamp; reserved keys ([ts], [level], [msg])
    in [fields] are suffixed with [_field] rather than clobbering the
    envelope. *)

val debug : ?fields:field list -> string -> unit
val info : ?fields:field list -> string -> unit
val warn : ?fields:field list -> string -> unit
val error : ?fields:field list -> string -> unit

val timestamp : unit -> string
(** The ISO-8601 UTC timestamp (millisecond precision) records carry —
    exposed for the format tests. *)
