(* See json.mli. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let to_channel oc j =
  output_string oc (to_string j);
  output_char oc '\n'

let pp ppf j = Fmt.string ppf (to_string j)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse of string

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.equal (String.sub st.src st.pos n) word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
      | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
      | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
      | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
      | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
        let hex = String.sub st.src st.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail st "bad \\u escape"
        in
        st.pos <- st.pos + 4;
        (* decode to UTF-8; surrogate pairs are passed through unpaired,
           which is enough for the ASCII-centric traces we emit *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        go ()
      | _ -> fail st "bad escape")
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" s))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let member () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let rec members acc =
        let kv = member () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members (kv :: acc)
        | Some '}' ->
          advance st;
          List.rev (kv :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos = String.length s then Ok v
    else Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
  | exception Parse msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
