(* See json.mli. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let to_channel oc j =
  output_string oc (to_string j);
  output_char oc '\n'

let pp ppf j = Fmt.string ppf (to_string j)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse of string

(* The parser faces untrusted bytes: swsd feeds it straight off the wire.
   Every lenient corner of the original implementation is closed here —
   strict \u hex digits (no OCaml int_of_string underscore/sign/base
   syntax), surrogate pairs decoded to real 4-byte UTF-8 with lone
   surrogates rejected, a nesting-depth limit instead of unbounded
   recursion, and the exact RFC 8259 number grammar instead of
   float_of_string leniency. *)

let default_max_depth = 512

type state = { src : string; mutable pos : int; max_depth : int }

let fail st msg = raise (Parse (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.equal (String.sub st.src st.pos n) word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

(* [int_of_string ("0x" ^ hex)] would accept OCaml integer-literal syntax
   inside the escape — underscores ("1_23" reads as 0x123), a second sign —
   so the four characters are checked to be hex digits one by one. *)
let hex_digit = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then
    fail st "bad \\u escape: expected 4 hex digits";
  let v = ref 0 in
  for i = 0 to 3 do
    let d = hex_digit st.src.[st.pos + i] in
    if d < 0 then fail st "bad \\u escape: expected 4 hex digits";
    v := (!v lsl 4) lor d
  done;
  st.pos <- st.pos + 4;
  !v

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
      | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
      | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
      | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
      | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
      | Some 'u' ->
        advance st;
        let code = parse_hex4 st in
        (* A high surrogate must be followed by a \u-escaped low surrogate;
           the pair decodes to one astral code point (4-byte UTF-8).  A lone
           surrogate in either direction has no UTF-8 encoding and is
           rejected rather than smuggled out as an invalid 3-byte blob. *)
        let code =
          if code >= 0xD800 && code <= 0xDBFF then begin
            if
              st.pos + 2 <= String.length st.src
              && st.src.[st.pos] = '\\'
              && st.src.[st.pos + 1] = 'u'
            then begin
              st.pos <- st.pos + 2;
              let lo = parse_hex4 st in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
              else fail st "unpaired high surrogate in \\u escape"
            end
            else fail st "unpaired high surrogate in \\u escape"
          end
          else if code >= 0xDC00 && code <= 0xDFFF then
            fail st "unpaired low surrogate in \\u escape"
          else code
        in
        add_utf8 buf code;
        go ()
      | _ -> fail st "bad escape")
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

(* RFC 8259: minus? (0 | nonzero digit+) frac? exp?
   float_of_string would also take "+1", "1.", ".5", "-", "0x1p3", "nan";
   none of those is JSON, and a daemon must answer them with a parse error
   rather than a guessed value. *)
let valid_json_number s =
  let n = String.length s in
  let i = ref 0 in
  let digits () =
    let start = !i in
    while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
      incr i
    done;
    !i > start
  in
  if !i < n && s.[!i] = '-' then incr i;
  let int_ok =
    if !i < n && s.[!i] = '0' then begin
      incr i;
      true (* a leading 0 stands alone: "01" is not JSON *)
    end
    else digits ()
  in
  let frac_ok =
    if !i < n && s.[!i] = '.' then begin
      incr i;
      digits ()
    end
    else true
  in
  let exp_ok =
    if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
      incr i;
      if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
      digits ()
    end
    else true
  in
  int_ok && frac_ok && exp_ok && !i = n

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  if not (valid_json_number s) then begin
    st.pos <- start;
    fail st (Printf.sprintf "bad number %S" s)
  end;
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" s))

let rec parse_value st depth =
  (* [depth] is the number of enclosing containers: the top-level value
     sits at 0, so exactly [max_depth] container levels are accepted *)
  if depth >= st.max_depth then
    fail st
      (Printf.sprintf "nesting deeper than %d levels" st.max_depth);
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st (depth + 1) in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let member () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st (depth + 1) in
        (k, v)
      in
      let rec members acc =
        let kv = member () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members (kv :: acc)
        | Some '}' ->
          advance st;
          List.rev (kv :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string ?(max_depth = default_max_depth) s =
  let st = { src = s; pos = 0; max_depth } in
  match parse_value st 0 with
  | v ->
    skip_ws st;
    if st.pos = String.length s then Ok v
    else Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
  | exception Parse msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
