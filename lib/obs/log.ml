(* See log.mli. *)

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* The threshold is an atomic int so [would_log] is one load — the only
   cost a suppressed record pays. *)
let threshold = Atomic.make (severity Warn)
let set_level l = Atomic.set threshold (severity l)

let level () =
  match Atomic.get threshold with
  | 0 -> Debug
  | 1 -> Info
  | 2 -> Warn
  | _ -> Error

let would_log l = severity l >= Atomic.get threshold

type format = Json | Text

let current_format = Atomic.make Text
let set_format f = Atomic.set current_format f
let format () = Atomic.get current_format

(* Channel + emission lock: records from connection threads, pool domains
   and the accept loop interleave, and a torn line is worse than a short
   wait.  A leaf lock — nothing is called while holding it but the
   formatter and the write. *)
let lock = Mutex.create ()
let channel = ref stderr
let set_channel oc = Mutex.protect lock (fun () -> channel := oc)

let timestamp () =
  let now = Unix.gettimeofday () in
  let tm = Unix.gmtime now in
  let ms = int_of_float ((now -. Float.of_int (int_of_float now)) *. 1000.) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec
    (max 0 (min 999 ms))

type field = string * Json.t

let reserved = [ "ts"; "level"; "msg" ]

let sanitize fields =
  List.map
    (fun (k, v) -> if List.mem k reserved then (k ^ "_field", v) else (k, v))
    fields

let render_json ts l msg fields =
  Json.to_string
    (Json.Obj
       ([
          ("ts", Json.String ts);
          ("level", Json.String (level_to_string l));
          ("msg", Json.String msg);
        ]
       @ sanitize fields))

let render_text ts l msg fields =
  let buf = Buffer.create 128 in
  Buffer.add_string buf ts;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (String.uppercase_ascii (level_to_string l));
  Buffer.add_char buf ' ';
  Buffer.add_string buf msg;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf
        (match v with Json.String s -> s | v -> Json.to_string v))
    fields;
  Buffer.contents buf

let log l ?(fields = []) msg =
  if would_log l then begin
    let ts = timestamp () in
    let line =
      match Atomic.get current_format with
      | Json -> render_json ts l msg fields
      | Text -> render_text ts l msg fields
    in
    Mutex.protect lock (fun () ->
        let oc = !channel in
        output_string oc line;
        output_char oc '\n';
        flush oc)
  end

let debug ?fields msg = log Debug ?fields msg
let info ?fields msg = log Info ?fields msg
let warn ?fields msg = log Warn ?fields msg
let error ?fields msg = log Error ?fields msg
