(* See trace.mli. *)

type limit = [ `Depth | `Nodes | `Deadline | `Candidates ]

type event =
  | Depth_started of int
  | Candidate_expanded
  | Cache of { layer : string; hit : bool }
  | Sat_call
  | Hom_check
  | Budget_tripped of limit
  | Witness_found
  | Span_begin of string
  | Span_end of string

let limit_to_string : limit -> string = function
  | `Depth -> "depth"
  | `Nodes -> "nodes"
  | `Deadline -> "deadline"
  | `Candidates -> "candidates"

let event_name = function
  | Depth_started _ -> "depth_started"
  | Candidate_expanded -> "candidate_expanded"
  | Cache _ -> "cache"
  | Sat_call -> "sat_call"
  | Hom_check -> "hom_check"
  | Budget_tripped _ -> "budget_tripped"
  | Witness_found -> "witness_found"
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Hist = struct
  (* 63 buckets cover the whole non-negative int range on 64-bit:
     bucket 0 = [0,2), bucket i = [2^i, 2^(i+1)) for i >= 1. *)
  let n_buckets = 63

  type t = { counts : int array; mutable count : int; mutable sum_ns : int }

  let create () = { counts = Array.make n_buckets 0; count = 0; sum_ns = 0 }

  let bucket_index n =
    if n < 2 then 0
    else begin
      let i = ref 0 and v = ref n in
      while !v > 1 do
        incr i;
        v := !v lsr 1
      done;
      !i
    end

  let bucket_bounds i =
    if i <= 0 then (0, 2)
    else
      let lo = 1 lsl i in
      (* [1 lsl 62] already overflows to [min_int]: the top representable
         bucket is 61 and it includes [max_int] itself *)
      let hi = if i >= 61 then max_int else 1 lsl (i + 1) in
      (lo, hi)

  let observe t ns =
    let ns = if ns < 0 then 0 else ns in
    t.counts.(bucket_index ns) <- t.counts.(bucket_index ns) + 1;
    t.count <- t.count + 1;
    t.sum_ns <- t.sum_ns + ns

  let count t = t.count
  let sum_ns t = t.sum_ns

  let buckets t =
    let acc = ref [] in
    for i = n_buckets - 1 downto 0 do
      if t.counts.(i) > 0 then acc := (i, t.counts.(i)) :: !acc
    done;
    !acc

  let merge a b =
    let m = create () in
    Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
    m.count <- a.count + b.count;
    m.sum_ns <- a.sum_ns + b.sum_ns;
    m

  (* Upper-bound convention: the exclusive upper bound of the bucket
     holding the rank-ceil(q*count) smallest observation, so the true
     quantile value is always <= the reported one (and < it, except in
     the top bucket, whose bound caps at [max_int] inclusive). *)
  let quantile t q =
    if t.count = 0 then 0
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
      let rec go i seen =
        if i >= n_buckets then snd (bucket_bounds (n_buckets - 1))
        else
          let seen = seen + t.counts.(i) in
          if seen >= rank then snd (bucket_bounds i) else go (i + 1) seen
      in
      go 0 0
    end

  let to_json t =
    Json.Obj
      [
        ("count", Json.Int t.count);
        ("sum_ns", Json.Int t.sum_ns);
        ( "buckets",
          Json.List
            (List.map
               (fun (i, c) ->
                 let lo, _ = bucket_bounds i in
                 Json.Obj
                   [
                     ("index", Json.Int i);
                     ("lo_ns", Json.Int lo);
                     ("count", Json.Int c);
                   ])
               (buckets t)) );
      ]
end

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type entry = { at_ns : int64; ev : event }

(* One ring + histogram table per domain that emits into the session, so
   recording from pool workers is plain unsynchronised mutation of
   domain-local state — no lock on the hot path.  Readers merge the shards:
   events by timestamp (the monotonic clock is system-wide), histograms by
   name.  With a single emitting domain there is exactly one shard and the
   merged view is byte-identical to the old single-ring session. *)
type shard = {
  buf : entry option array;
  mutable next : int; (* next write slot *)
  mutable length : int; (* entries currently stored, <= capacity *)
  mutable dropped_events : int;
  hists : (string, Hist.t) Hashtbl.t;
}

type t = {
  session_start_ns : int64;
  capacity : int; (* per-domain ring capacity *)
  shards : shard Par.Shard.t;
}

let default_capacity = 65_536

let make capacity =
  let capacity = max 1 capacity in
  let fresh () =
    {
      buf = Array.make capacity None;
      next = 0;
      length = 0;
      dropped_events = 0;
      hists = Hashtbl.create 16;
    }
  in
  {
    session_start_ns = Clock.now_ns ();
    capacity;
    shards = Par.Shard.create fresh;
  }

let current : t option Atomic.t = Atomic.make None

let install ?(capacity = default_capacity) () =
  let t = make capacity in
  Atomic.set current (Some t);
  t

let uninstall () = Atomic.set current None
let enabled () = Atomic.get current <> None

let with_session ?capacity f =
  let t = install ?capacity () in
  Fun.protect ~finally:uninstall (fun () ->
      let v = f () in
      (v, t))

let record t at_ns ev =
  let s = Par.Shard.get t.shards in
  if s.length = t.capacity then s.dropped_events <- s.dropped_events + 1
  else s.length <- s.length + 1;
  s.buf.(s.next) <- Some { at_ns; ev };
  s.next <- (s.next + 1) mod t.capacity

let emit ev =
  match Atomic.get current with
  | None -> ()
  | Some t -> record t (Clock.now_ns ()) ev

(* The emitting domain's histogram for [name], creating it in that
   domain's shard on first use. *)
let hist_for t name =
  let s = Par.Shard.get t.shards in
  match Hashtbl.find_opt s.hists name with
  | Some h -> h
  | None ->
    let h = Hist.create () in
    Hashtbl.add s.hists name h;
    h

let observe name ns =
  match Atomic.get current with
  | None -> ()
  | Some t -> Hist.observe (hist_for t name) ns

let span name f =
  match Atomic.get current with
  | None -> f ()
  | Some t ->
    let t0 = Clock.now_ns () in
    record t t0 (Span_begin name);
    let finish () =
      let t1 = Clock.now_ns () in
      record t t1 (Span_end name);
      Hist.observe (hist_for t name) (Int64.to_int (Int64.sub t1 t0))
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

(* One shard's surviving events, oldest-first: when full the oldest entry
   sits at [next]. *)
let shard_events t s =
  let out = ref [] in
  let start = if s.length = t.capacity then s.next else 0 in
  for i = s.length - 1 downto 0 do
    match s.buf.((start + i) mod t.capacity) with
    | Some e -> out := (e.at_ns, e.ev) :: !out
    | None -> ()
  done;
  !out

let events t =
  (* Shards are visited in creation order and the sort is stable, so one
     emitting domain's stream comes back untouched; events of distinct
     domains interleave by their monotonic timestamps. *)
  Par.Shard.fold (fun acc s -> acc @ shard_events t s) [] t.shards
  |> List.stable_sort (fun (a, _) (b, _) -> Int64.compare a b)

let event_count t = Par.Shard.fold (fun acc s -> acc + s.length) 0 t.shards

let dropped t =
  Par.Shard.fold (fun acc s -> acc + s.dropped_events) 0 t.shards

let start_ns t = t.session_start_ns

let histograms t =
  let merged = Hashtbl.create 16 in
  Par.Shard.iter
    (fun s ->
      Hashtbl.iter
        (fun k h ->
          match Hashtbl.find_opt merged k with
          | None -> Hashtbl.replace merged k h
          | Some h0 -> Hashtbl.replace merged k (Hist.merge h0 h))
        s.hists)
    t.shards;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Decided of bool
  | Found_at of int
  | Completed of int
  | Tripped of limit

type provenance = {
  procedure : string;
  outcome : outcome;
  first_depth : int;
  last_depth : int;
  counters : (string * int) list;
  duration_ns : int64;
}

let keep_provenances = 64

(* Newest first, truncated to [keep_provenances].  The log is process-wide
   and nested procedure runs can execute on pool domains (a sampling check
   inside a parallel candidate probe records its own provenance), so it is
   mutex-guarded — a leaf lock, taken a handful of times per run, never on
   an event hot path and never while holding another lock. *)
let provenance_lock = Mutex.create ()
let provenance_log : provenance list ref = ref []

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: xs -> x :: take (n - 1) xs

let record_provenance p =
  Mutex.protect provenance_lock (fun () ->
      provenance_log := take keep_provenances (p :: !provenance_log))

let last_provenance () =
  Mutex.protect provenance_lock (fun () ->
      match !provenance_log with [] -> None | p :: _ -> Some p)

let provenances () = Mutex.protect provenance_lock (fun () -> !provenance_log)

let amend_last_provenance f =
  Mutex.protect provenance_lock (fun () ->
      match !provenance_log with
      | [] -> ()
      | p :: rest -> provenance_log := f p :: rest)

let clear_provenances () =
  Mutex.protect provenance_lock (fun () -> provenance_log := [])

let outcome_to_string = function
  | Decided b -> Printf.sprintf "decided:%b" b
  | Found_at d -> Printf.sprintf "found_at:%d" d
  | Completed d -> Printf.sprintf "completed:%d" d
  | Tripped l -> Printf.sprintf "tripped:%s" (limit_to_string l)

let outcome_to_json = function
  | Decided b -> Json.Obj [ ("kind", Json.String "decided"); ("value", Json.Bool b) ]
  | Found_at d -> Json.Obj [ ("kind", Json.String "found_at"); ("depth", Json.Int d) ]
  | Completed d ->
    Json.Obj [ ("kind", Json.String "completed"); ("depth", Json.Int d) ]
  | Tripped l ->
    Json.Obj
      [ ("kind", Json.String "tripped"); ("limit", Json.String (limit_to_string l)) ]

let provenance_to_json p =
  Json.Obj
    [
      ("procedure", Json.String p.procedure);
      ("outcome", outcome_to_json p.outcome);
      ("first_depth", Json.Int p.first_depth);
      ("last_depth", Json.Int p.last_depth);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) p.counters) );
      ("duration_ms", Json.Float (Clock.ns_to_ms p.duration_ns));
    ]

let pp_provenance ppf p =
  Fmt.pf ppf "@[<v>%s: %s (depths %d..%d, %.3f ms)@,%a@]" p.procedure
    (outcome_to_string p.outcome)
    p.first_depth p.last_depth
    (Clock.ns_to_ms p.duration_ns)
    Fmt.(list ~sep:(any "@,") (pair ~sep:(any "=") string int))
    p.counters

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let event_args = function
  | Depth_started d -> [ ("depth", Json.Int d) ]
  | Cache { layer; hit } -> [ ("layer", Json.String layer); ("hit", Json.Bool hit) ]
  | Budget_tripped l -> [ ("limit", Json.String (limit_to_string l)) ]
  | Candidate_expanded | Sat_call | Hom_check | Witness_found | Span_begin _
  | Span_end _ ->
    []

let us_since t at_ns =
  Int64.to_float (Int64.sub at_ns t.session_start_ns) /. 1e3

let to_chrome t =
  let trace_event (at_ns, ev) =
    let ts = ("ts", Json.Float (us_since t at_ns)) in
    let common = [ ("pid", Json.Int 1); ("tid", Json.Int 1); ts ] in
    match ev with
    | Span_begin name ->
      Json.Obj
        (("name", Json.String name) :: ("ph", Json.String "B") :: common)
    | Span_end name ->
      Json.Obj
        (("name", Json.String name) :: ("ph", Json.String "E") :: common)
    | ev ->
      let args = event_args ev in
      Json.Obj
        (("name", Json.String (event_name ev))
        :: ("ph", Json.String "i")
        :: ("s", Json.String "t")
        :: common
        @ if args = [] then [] else [ ("args", Json.Obj args) ])
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map trace_event (events t)));
      ("displayTimeUnit", Json.String "ms");
      ("dropped", Json.Int (dropped t));
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, Hist.to_json h)) (histograms t)) );
      ("provenance", Json.List (List.map provenance_to_json (provenances ())));
    ]

let to_jsonl t =
  List.map
    (fun (at_ns, ev) ->
      let base =
        [
          ("ts_us", Json.Float (us_since t at_ns));
          ("event", Json.String (event_name ev));
        ]
      in
      let extra =
        match ev with
        | Span_begin name | Span_end name -> [ ("span", Json.String name) ]
        | ev -> event_args ev
      in
      Json.to_string (Json.Obj (base @ extra)))
    (events t)

let write_chrome t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc (to_chrome t))

let write_jsonl t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun line -> output_string oc line; output_char oc '\n') (to_jsonl t))
