(* See metrics.mli. *)

(* ------------------------------------------------------------------ *)
(* The global switch                                                   *)
(* ------------------------------------------------------------------ *)

let switch = Atomic.make true
let set_enabled b = Atomic.set switch b
let enabled () = Atomic.get switch

(* ------------------------------------------------------------------ *)
(* Name validation                                                     *)
(* ------------------------------------------------------------------ *)

let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'

let valid_metric_name s =
  String.length s > 0
  && (let c = s.[0] in
      is_alpha c || c = '_' || c = ':')
  && String.for_all (fun c -> is_alpha c || is_digit c || c = '_' || c = ':') s

let valid_label_name s =
  String.length s > 0
  && (let c = s.[0] in
      is_alpha c || c = '_')
  && String.for_all (fun c -> is_alpha c || is_digit c || c = '_') s
  && not (String.length s >= 2 && s.[0] = '_' && s.[1] = '_')

let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Instruments                                                         *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  (* One plain [int ref] per domain; [inc] is a DLS read plus an
     unsynchronised store.  Negative increments are dropped — counters
     are monotone by contract, and a buggy caller must not be able to
     make a scrape go backwards. *)
  type t = int ref Par.Shard.t

  let make () = Par.Shard.create (fun () -> ref 0)

  let inc ?(by = 1) t =
    if by > 0 && Atomic.get switch then begin
      let r = Par.Shard.get t in
      r := !r + by
    end

  let value t = Par.Shard.fold (fun acc r -> acc + !r) 0 t
end

module Gauge = struct
  type t = int Atomic.t

  let make () = Atomic.make 0
  let set t v = if Atomic.get switch then Atomic.set t v
  let add t v = if Atomic.get switch then ignore (Atomic.fetch_and_add t v)
  let sub t v = add t (-v)
  let value t = Atomic.get t
end

module Histogram = struct
  type t = Trace.Hist.t Par.Shard.t

  let make () = Par.Shard.create Trace.Hist.create

  let observe t v =
    if Atomic.get switch then Trace.Hist.observe (Par.Shard.get t) v

  let snapshot t =
    Par.Shard.fold (fun acc h -> Trace.Hist.merge acc h) (Trace.Hist.create ()) t
end

(* ------------------------------------------------------------------ *)
(* Families and the registry                                           *)
(* ------------------------------------------------------------------ *)

type kind = KCounter | KGauge | KHistogram

type child =
  | C of Counter.t
  | G of Gauge.t
  | GF of (unit -> int)
  | H of Histogram.t

type family = {
  name : string;
  help : string;
  kind : kind;
  mutable children : ((string * string) list * child) list;
      (* (sorted label binding, child), reverse creation order *)
}

type t = { lock : Mutex.t; mutable families : family list (* reverse order *) }

let create () = { lock = Mutex.create (); families = [] }

let kind_string = function
  | KCounter -> "counter"
  | KGauge -> "gauge"
  | KHistogram -> "histogram"

let canonical_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let check_name name =
  if not (valid_metric_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name)

let check_labels name labels =
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg
          (Printf.sprintf "Metrics: invalid label name %S on metric %S" k name))
    labels;
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then
        invalid_arg
          (Printf.sprintf "Metrics: duplicate label %S on metric %S" a name)
      else dup rest
    | _ -> ()
  in
  dup labels

(* Get-or-create a family, then get-or-create the child for [labels] via
   [fresh].  The whole operation holds the registry mutex — registration
   is a startup-time path; the returned handle is the lock-free one. *)
let register t ~kind ~help ~labels name fresh =
  check_name name;
  let labels = canonical_labels labels in
  check_labels name labels;
  Mutex.protect t.lock (fun () ->
      let fam =
        match
          List.find_opt (fun f -> String.equal f.name name) t.families
        with
        | Some f ->
          if f.kind <> kind then
            invalid_arg
              (Printf.sprintf "Metrics: %S already registered as a %s" name
                 (kind_string f.kind));
          f
        | None ->
          let f = { name; help; kind; children = [] } in
          t.families <- f :: t.families;
          f
      in
      (match fam.children with
      | (existing, _) :: _ ->
        if List.map fst existing <> List.map fst labels then
          invalid_arg
            (Printf.sprintf
               "Metrics: %S children must share one label-name set" name)
      | [] -> ());
      match List.assoc_opt labels fam.children with
      | Some child -> child
      | None ->
        let child = fresh () in
        fam.children <- (labels, child) :: fam.children;
        child)

let counter t ?(help = "") ?(labels = []) name =
  match register t ~kind:KCounter ~help ~labels name (fun () -> C (Counter.make ())) with
  | C c -> c
  | _ -> assert false

let gauge t ?(help = "") ?(labels = []) name =
  match register t ~kind:KGauge ~help ~labels name (fun () -> G (Gauge.make ())) with
  | G g -> g
  | _ -> assert false

let gauge_fn t ?(help = "") ?(labels = []) name f =
  ignore (register t ~kind:KGauge ~help ~labels name (fun () -> GF f))

let histogram t ?(help = "") ?(labels = []) name =
  match
    register t ~kind:KHistogram ~help ~labels name (fun () -> H (Histogram.make ()))
  with
  | H h -> h
  | _ -> assert false

(* Families in registration order, children in creation order — a stable
   scrape layout, independent of which domains bumped what. *)
let families t =
  Mutex.protect t.lock (fun () ->
      List.rev_map (fun f -> (f, List.rev f.children)) t.families)

let eval_gauge_fn f = try f () with _ -> 0

(* ------------------------------------------------------------------ *)
(* JSON snapshot                                                       *)
(* ------------------------------------------------------------------ *)

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let child_json (labels, child) =
  let base = [ ("labels", labels_json labels) ] in
  match child with
  | C c -> Json.Obj (base @ [ ("value", Json.Int (Counter.value c)) ])
  | G g -> Json.Obj (base @ [ ("value", Json.Int (Gauge.value g)) ])
  | GF f -> Json.Obj (base @ [ ("value", Json.Int (eval_gauge_fn f)) ])
  | H h ->
    let m = Histogram.snapshot h in
    let q p = Json.Int (Trace.Hist.quantile m p) in
    Json.Obj
      (base
      @ [
          ("count", Json.Int (Trace.Hist.count m));
          ("sum_ns", Json.Int (Trace.Hist.sum_ns m));
          ("p50_ns", q 0.50);
          ("p95_ns", q 0.95);
          ("p99_ns", q 0.99);
          ( "buckets",
            Json.List
              (List.map
                 (fun (i, c) ->
                   let lo, _ = Trace.Hist.bucket_bounds i in
                   Json.Obj
                     [
                       ("index", Json.Int i);
                       ("lo_ns", Json.Int lo);
                       ("count", Json.Int c);
                     ])
                 (Trace.Hist.buckets m)) );
        ])

let to_json t =
  Json.Obj
    [
      ( "families",
        Json.List
          (List.map
             (fun (f, children) ->
               Json.Obj
                 [
                   ("name", Json.String f.name);
                   ("kind", Json.String (kind_string f.kind));
                   ("help", Json.String f.help);
                   ("series", Json.List (List.map child_json children));
                 ])
             (families t)) );
    ]

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

let expose_name name kind =
  match kind with
  | `Counter ->
    let suffix = "_total" in
    let n = String.length name and sn = String.length suffix in
    if n >= sn && String.equal (String.sub name (n - sn) sn) suffix then name
    else name ^ suffix
  | `Gauge | `Histogram -> name

let expose_kind = function
  | KCounter -> `Counter
  | KGauge -> `Gauge
  | KHistogram -> `Histogram

let label_block buf labels =
  match labels with
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'

let sample buf name labels value =
  Buffer.add_string buf name;
  label_block buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int value);
  Buffer.add_char buf '\n'

let to_prometheus t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (f, children) ->
      let ename = expose_name f.name (expose_kind f.kind) in
      if not (String.equal f.help "") then begin
        Buffer.add_string buf "# HELP ";
        Buffer.add_string buf ename;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (escape_help f.help);
        Buffer.add_char buf '\n'
      end;
      Buffer.add_string buf "# TYPE ";
      Buffer.add_string buf ename;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (kind_string f.kind);
      Buffer.add_char buf '\n';
      List.iter
        (fun (labels, child) ->
          match child with
          | C c -> sample buf ename labels (Counter.value c)
          | G g -> sample buf ename labels (Gauge.value g)
          | GF fn -> sample buf ename labels (eval_gauge_fn fn)
          | H h ->
            (* Cumulative buckets at the nonzero log-2 boundaries plus
               +Inf; [le] bounds are the buckets' exclusive upper bounds
               in ns, so the cumulative counts are exact for them. *)
            let m = Histogram.snapshot h in
            let cumulative = ref 0 in
            List.iter
              (fun (i, c) ->
                cumulative := !cumulative + c;
                let _, hi = Trace.Hist.bucket_bounds i in
                sample buf (ename ^ "_bucket")
                  (labels @ [ ("le", string_of_int hi) ])
                  !cumulative)
              (Trace.Hist.buckets m);
            sample buf (ename ^ "_bucket")
              (labels @ [ ("le", "+Inf") ])
              (Trace.Hist.count m);
            sample buf (ename ^ "_sum") labels (Trace.Hist.sum_ns m);
            sample buf (ename ^ "_count") labels (Trace.Hist.count m))
        children)
    (families t);
  Buffer.contents buf
