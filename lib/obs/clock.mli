(** The one monotonic clock of the system.

    [Sys.time] measures process CPU seconds at a coarse quantum: it
    under-counts anything that blocks and quantizes fast measurements to
    zero, which made the old [Engine.Meter] deadline a stand-in.  Every
    timing consumer — the meter's deadline, the trace layer's span
    timestamps, the benchmark's growth series — now reads the same
    CLOCK_MONOTONIC nanosecond source, so their numbers are mutually
    comparable. *)

(** Nanoseconds on the OS monotonic clock.  Only differences are
    meaningful; the origin is unspecified (typically boot time). *)
val now_ns : unit -> int64

(** [now_s] is {!now_ns} in seconds, for deadline arithmetic. *)
val now_s : unit -> float

(** Nanoseconds elapsed since an earlier {!now_ns} reading. *)
val elapsed_ns : int64 -> int64

(** Convert a nanosecond duration to milliseconds. *)
val ns_to_ms : int64 -> float
