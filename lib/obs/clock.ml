(* See clock.mli.  Monotonic_clock is bechamel's thin binding over
   clock_gettime(CLOCK_MONOTONIC) (mach_absolute_time on macOS); the
   package is already a bench dependency, so this adds no new install. *)

let now_ns () = Monotonic_clock.now ()
let now_s () = Int64.to_float (now_ns ()) /. 1e9
let elapsed_ns since = Int64.sub (now_ns ()) since
let ns_to_ms ns = Int64.to_float ns /. 1e6
