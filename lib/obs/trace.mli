(** Structured tracing: typed events, spans, latency histograms, and run
    provenance for the bounded procedures.

    Design constraints, in order:

    {ol
    {- {b Zero cost when off.}  No session installed means every [emit]
       and [span] collapses to one ref read and a branch; procedure
       results are byte-identical with tracing on or off.}
    {- {b Bounded.}  Events land in a fixed-capacity ring buffer; when it
       wraps, the oldest events are overwritten and counted in
       {!dropped}, never allocated without bound.}
    {- {b Layered below the engine.}  This module must not depend on
       [Engine], yet events mention budget limits.  [Engine.limit] is a
       polymorphic variant, so we declare the {e structurally identical}
       type here and the two unify at every call site without a
       dependency edge.}}

    Timestamps come from {!Clock} (monotonic nanoseconds).  Two exporters
    are provided: Chrome [trace_event] JSON (load the file in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}) and
    compact JSONL, one event object per line. *)

(** Same shape as [Engine.limit]; the polymorphic-variant types unify. *)
type limit = [ `Depth | `Nodes | `Deadline | `Candidates ]

type event =
  | Depth_started of int  (** iterative deepening entered this depth *)
  | Candidate_expanded  (** one search node expanded ([Stats.node]) *)
  | Cache of { layer : string; hit : bool }
      (** memo lookup in [layer] ("unfold", "automata", "index", ...) *)
  | Sat_call  (** one satisfiability/emptiness oracle call *)
  | Hom_check  (** one homomorphism / containment check *)
  | Budget_tripped of limit  (** the meter stopped the run *)
  | Witness_found  (** a probe returned a decisive witness *)
  | Span_begin of string  (** phase entry (paired with [Span_end]) *)
  | Span_end of string

val limit_to_string : limit -> string
val event_name : event -> string

(** {1 Latency histograms} *)

(** Log-2 bucketed duration histograms: bucket [0] covers [[0, 2)] ns and
    bucket [i >= 1] covers [[2^i, 2^(i+1))] ns, so ~63 buckets span the
    full [int] range with constant relative error.  Mutable and not
    thread-safe on its own — sessions keep one histogram table per
    emitting domain and merge them at read time. *)
module Hist : sig
  type t

  val create : unit -> t

  (** Record one duration in ns; negatives clamp to 0. *)
  val observe : t -> int -> unit

  val count : t -> int
  val sum_ns : t -> int
  val bucket_index : int -> int

  (** [(lo, hi)], inclusive-exclusive — except the top bucket, whose [hi]
      caps at [max_int] and includes it. *)
  val bucket_bounds : int -> int * int

  (** Nonzero [(index, count)] pairs, ascending by index. *)
  val buckets : t -> (int * int) list

  (** Fresh histogram with summed counts. *)
  val merge : t -> t -> t

  (** [quantile t q] for [q] in [[0, 1]] (clamped): the {e exclusive
      upper bound} of the bucket holding the [ceil (q * count)]-th
      smallest observation, so the true quantile never exceeds the
      reported value.  Returns [0] on an empty histogram.  This is the
      p50/p95/p99 read-out of the bench and the telemetry plane — exact
      to within one log-2 bucket (constant relative error). *)
  val quantile : t -> float -> int

  val to_json : t -> Json.t
end

(** {1 Sessions} *)

type t
(** An installed tracing session.  Each domain that emits into the session
    gets a private ring buffer and histogram table (no lock on the
    recording path); the inspection functions below merge the per-domain
    shards — events by monotonic timestamp, histograms by name — so on a
    single domain a session reads back exactly like the unsharded
    original. *)

val default_capacity : int
(** Ring capacity {e per emitting domain}. *)

(** [install ?capacity ()] creates a session and makes it current;
    replaces any previously current session. *)
val install : ?capacity:int -> unit -> t

(** Clear the current session; subsequent emissions are no-ops. *)
val uninstall : unit -> unit

val enabled : unit -> bool

(** [with_session ?capacity f] installs a fresh session around [f],
    uninstalling it afterwards (also on exception); returns [f]'s result
    and the session. *)
val with_session : ?capacity:int -> (unit -> 'a) -> 'a * t

(** Record an event in the current session, if any. *)
val emit : event -> unit

(** [span name f] brackets [f] with [Span_begin]/[Span_end] (also on
    exception) and feeds the duration into the session histogram for
    [name].  When disabled it is exactly [f ()]. *)
val span : string -> (unit -> 'a) -> 'a

(** [observe name ns] feeds a duration into [name]'s histogram without
    emitting span events. *)
val observe : string -> int -> unit

(** {1 Inspection} *)

val events : t -> (int64 * event) list
(** surviving events, chronological; timestamps are raw [Clock.now_ns] *)

val event_count : t -> int
val dropped : t -> int
val start_ns : t -> int64
val histograms : t -> (string * Hist.t) list

(** {1 Run provenance}

    Provenance is recorded {e unconditionally} — it is a handful of words
    per procedure run, so unlike event tracing it needs no opt-in.  The
    engine records one record per completed bounded run; decisive
    procedures record [Decided].  A bounded number of recent records is
    retained ({!keep_provenances}). *)

type outcome =
  | Decided of bool  (** decisive procedure, with its answer *)
  | Found_at of int  (** witness found at this depth *)
  | Completed of int  (** all depths through this one scanned, no witness *)
  | Tripped of limit  (** budget stopped the run *)

type provenance = {
  procedure : string;
  outcome : outcome;
  first_depth : int;
  last_depth : int;  (** deepest depth entered; [first_depth - 1] if none *)
  counters : (string * int) list;  (** counter deltas for this run *)
  duration_ns : int64;
}

val keep_provenances : int

val record_provenance : provenance -> unit
val last_provenance : unit -> provenance option

(** Most recent first, at most {!keep_provenances} entries. *)
val provenances : unit -> provenance list

(** Rewrite the most recent record (e.g. when a post-scan phase refines
    the outcome); no-op when none exists. *)
val amend_last_provenance : (provenance -> provenance) -> unit

val clear_provenances : unit -> unit
val outcome_to_string : outcome -> string
val provenance_to_json : provenance -> Json.t
val pp_provenance : provenance Fmt.t

(** {1 Exporters} *)

(** Chrome [trace_event] format: [{"traceEvents": [...]}] with [B]/[E]
    pairs for spans and [i] (instant) events for the rest; timestamps in
    microseconds relative to session start.  Recorded provenances ride
    along under a ["provenance"] key. *)
val to_chrome : t -> Json.t

(** One compact JSON object per event, in order. *)
val to_jsonl : t -> string list

val write_chrome : t -> string -> unit
val write_jsonl : t -> string -> unit
