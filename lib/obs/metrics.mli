(** A typed metrics registry: counters, gauges and label-sets over the
    {!Trace.Hist} log-2 histograms, with a JSON snapshot and a
    Prometheus/OpenMetrics text exporter.

    Design constraints, in order:

    {ol
    {- {b Contention-free hot path.}  Counter increments and histogram
       observations land in per-domain instances ({!Par.Shard}) — one
       domain-local-storage read, plain unsynchronised mutation, no lock,
       no atomic RMW.  Readers merge the shards at scrape time.}
    {- {b Zero cost when off.}  {!set_enabled}[ false] turns every bump
       into one atomic load and a branch; values read back as they were.
       Results of instrumented code are identical either way.}
    {- {b Valid exposition, checked at registration.}  Metric and label
       names are validated against the Prometheus grammar when a family
       is created ([Invalid_argument] otherwise), so the exporter can
       never emit an unparseable page; label {e values} are arbitrary
       bytes and are escaped on export.}}

    Registration (creating a family or a labeled child) takes the
    registry mutex and is expected to happen at startup; the handles it
    returns are the lock-free hot path.  Re-registering the same name
    with the same kind returns the existing family; the same label set
    returns the existing child. *)

type t
(** A metrics registry: an ordered set of metric families, each holding
    one child per label-set. *)

val create : unit -> t

(** {1 The global switch}

    One process-wide toggle (the bench's metrics-off arm and
    [swsd --no-metrics]).  Disabled means writes are dropped; reads and
    export still work. *)

val set_enabled : bool -> unit

val enabled : unit -> bool

(** {1 Name validation}

    Exposed for the exposition tests: the exporter's output is only as
    parseable as these grammars. *)

val valid_metric_name : string -> bool
(** [[a-zA-Z_:][a-zA-Z0-9_:]*] — the Prometheus metric-name grammar. *)

val valid_label_name : string -> bool
(** [[a-zA-Z_][a-zA-Z0-9_]*], not starting with [__] (reserved). *)

val escape_label_value : string -> string
(** Backslash, double-quote and newline escaped per the text format. *)

val escape_help : string -> string
(** Backslash and newline escaped (HELP lines). *)

(** {1 Instruments} *)

module Counter : sig
  type t

  val inc : ?by:int -> t -> unit
  (** Monotonic; [by] defaults to 1, negative [by] is ignored. *)

  val value : t -> int
  (** Merged across domains. *)
end

module Gauge : sig
  (** A settable level (in-flight requests, open connections).  Gauges
      are low-frequency instruments, so one atomic cell is enough — no
      sharding. *)
  type t

  val set : t -> int -> unit
  val add : t -> int -> unit
  val sub : t -> int -> unit
  val value : t -> int
end

module Histogram : sig
  type t

  val observe : t -> int -> unit
  (** Record one non-negative value (typically a duration in ns) into
      the calling domain's {!Trace.Hist}; negatives clamp to 0. *)

  val snapshot : t -> Trace.Hist.t
  (** Fresh merged histogram across domains. *)
end

(** {1 Registration}

    [labels] is the child's label binding, e.g.
    [[("method", "compose")]]; it defaults to the empty set.  Label
    bindings are canonicalized by sorting on label name, so the same set
    in any order names the same child.  Raises [Invalid_argument] on an
    invalid metric/label name, a kind clash with an existing family, or
    a label-name set differing from the family's existing children. *)

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

val gauge_fn :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  (unit -> int) ->
  unit
(** A callback gauge, read at scrape time (uptime, pool size, bridged
    cache gauges).  The callback must be safe to call from the scrape
    thread; an exception it raises is caught and exported as 0. *)

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> string -> Histogram.t

(** {1 Export} *)

val to_json : t -> Json.t
(** [{"families": [{name; kind; help; series: [{labels; ...value}]}]}] —
    counters/gauges carry ["value"], histograms the {!Trace.Hist.to_json}
    fields plus p50/p95/p99 read via {!Trace.Hist.quantile}. *)

val to_prometheus : t -> string
(** Prometheus text format (content type
    [text/plain; version=0.0.4]): one [# HELP]/[# TYPE] pair per family,
    counters exposed with the [_total] suffix, histograms as cumulative
    [_bucket{le="..."}] series (log-2 upper bounds, ns) plus [_sum] and
    [_count].  Families export in registration order, children in
    creation order; no series is ever emitted twice. *)

val expose_name : string -> [ `Counter | `Gauge | `Histogram ] -> string
(** The exposition name of a family ([_total] appended for counters
    unless already present) — exported for the shape tests. *)
