(** Nondeterministic finite automata with epsilon transitions over the
    integer alphabet [{0, ..., alphabet_size - 1}].

    State sets are packed bit sets ({!Repr.Bitset}); [Iset] is an alias, so
    existing [Nfa.Iset.mem]/[iter]/[elements] call sites read unchanged.
    Per-state epsilon closures are memoized inside each automaton. *)

module Iset = Repr.Bitset

type t

val create :
  num_states:int ->
  alphabet_size:int ->
  starts:int list ->
  finals:int list ->
  edges:(int * int * int) list ->
  eps_edges:(int * int) list ->
  t

val num_states : t -> int
val alphabet_size : t -> int
val starts : t -> int list
val finals : t -> int list

(** The start/final state sets without list conversion. *)
val start_set : t -> Iset.t

val final_set : t -> Iset.t
val successors : t -> int -> int -> Iset.t
val eps_successors : t -> int -> Iset.t
val edges : t -> (int * int * int) list

(** Exact canonical representation of the automaton's content (states,
    transitions, epsilon edges), as an opaque byte string: structurally
    equal automata get equal strings however much their lazy closure
    memos have been filled.  Composition cache keys are built from it
    (DESIGN.md §4h). *)
val canonical_repr : t -> string

(** Epsilon closure of one state (memoized per automaton). *)
val closure_of_state : t -> int -> Iset.t

(** Fill the per-state closure memo for every state.  Called before a
    parallel section so worker domains only ever read the memo. *)
val warm_closures : t -> unit

val eps_closure : t -> Iset.t -> Iset.t
val step : t -> Iset.t -> int -> Iset.t
val accepts : t -> int list -> bool
val is_empty : t -> bool

(** Shortest accepted word (BFS over the subset construction): the
    counterexample witness reported by the decision procedures. *)
val shortest_word : t -> int list option

val empty : int -> t
val epsilon : int -> t
val symbol : int -> int -> t
val union : t -> t -> t
val concat : t -> t -> t
val star : t -> t
val of_regex : alphabet_size:int -> Regex.t -> t
val reverse : t -> t

(** Product intersection (epsilon-free on-the-fly construction). *)
val inter : t -> t -> t

(** Epsilon removal: same language, empty epsilon map. *)
val eps_free : t -> t

(** Relabel symbols; [f a] lists the new symbols standing for [a]. *)
val map_symbols : alphabet_size:int -> (int -> int list) -> t -> t

val pp : t Fmt.t
