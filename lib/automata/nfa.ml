(* Nondeterministic finite automata with epsilon transitions, over the
   integer alphabet {0, ..., alphabet_size - 1}.  The FSA substrate for the
   Roman model (Section 3) and the PL decision procedures (Theorem 4.1(3)).

   State sets are packed bit sets ({!Repr.Bitset}) and the transition
   function is a dense array indexed by [state * alphabet_size + symbol], so
   stepping a set is a handful of word-level unions instead of a map lookup
   per (state, symbol) pair under polymorphic compare.  Per-state epsilon
   closures are memoized in the automaton (computed once, reused by every
   [eps_closure]/[step]/subset-construction call on it). *)

module Iset = Repr.Bitset

type t = {
  num_states : int;
  alphabet_size : int;
  starts : Iset.t;
  finals : Iset.t;
  trans : Iset.t array; (* trans.(q * alphabet_size + a) = successors *)
  eps : Iset.t array;   (* eps.(q) = epsilon successors *)
  closures : Iset.t option array; (* memo: per-state epsilon closure *)
}

let wrap ~num_states ~alphabet_size ~starts ~finals ~trans ~eps =
  {
    num_states;
    alphabet_size;
    starts;
    finals;
    trans;
    eps;
    closures = Array.make num_states None;
  }

let create ~num_states ~alphabet_size ~starts ~finals ~edges ~eps_edges =
  let check q =
    if q < 0 || q >= num_states then invalid_arg "Nfa.create: state out of range"
  in
  List.iter check starts;
  List.iter check finals;
  let trans = Array.make (num_states * alphabet_size) Iset.empty in
  List.iter
    (fun (p, a, q) ->
      check p;
      check q;
      if a < 0 || a >= alphabet_size then
        invalid_arg "Nfa.create: symbol out of range";
      let k = (p * alphabet_size) + a in
      trans.(k) <- Iset.add q trans.(k))
    edges;
  let eps = Array.make num_states Iset.empty in
  List.iter
    (fun (p, q) ->
      check p;
      check q;
      eps.(p) <- Iset.add q eps.(p))
    eps_edges;
  wrap ~num_states ~alphabet_size ~starts:(Iset.of_list starts)
    ~finals:(Iset.of_list finals) ~trans ~eps

let num_states n = n.num_states
let alphabet_size n = n.alphabet_size
let starts n = Iset.elements n.starts
let finals n = Iset.elements n.finals
let start_set n = n.starts
let final_set n = n.finals

let successors n p a = n.trans.((p * n.alphabet_size) + a)

let eps_successors n p = n.eps.(p)

let edges n =
  let acc = ref [] in
  for p = n.num_states - 1 downto 0 do
    for a = n.alphabet_size - 1 downto 0 do
      Iset.iter (fun q -> acc := (p, a, q) :: !acc) (successors n p a)
    done
  done;
  !acc

(* Exact canonical representation of the automaton's content.  Built from
   plain int lists, never by marshaling [t] itself: the closure memo (and
   the bitsets' cached hashes) fill in lazily, so raw [t] bytes depend on
   how much the automaton has been queried. *)
let canonical_repr n =
  let eps_edges =
    List.concat
      (List.init n.num_states (fun p ->
           List.map (fun q -> (p, q)) (Iset.elements n.eps.(p))))
  in
  Marshal.to_string
    ( n.num_states,
      n.alphabet_size,
      Iset.elements n.starts,
      Iset.elements n.finals,
      edges n,
      eps_edges )
    [ Marshal.No_sharing ]

(* Memoized per-state epsilon closure (includes the state itself). *)
let closure_of_state n q =
  match n.closures.(q) with
  | Some c -> c
  | None ->
    let rec go frontier closed =
      if Iset.is_empty frontier then closed
      else
        let next =
          Iset.fold (fun p acc -> Iset.union acc n.eps.(p)) frontier Iset.empty
        in
        let fresh = Iset.diff next closed in
        go fresh (Iset.union closed fresh)
    in
    let c = go (Iset.singleton q) (Iset.singleton q) in
    n.closures.(q) <- Some c;
    c

(* Fill the closure memo for every state.  Called before handing the
   automaton to a domain pool: the memo write in [closure_of_state] is a
   benign race (every filler computes the same closure), but prefilling
   sequentially keeps the parallel sections free of shared-state writes
   entirely. *)
let warm_closures n =
  for q = 0 to n.num_states - 1 do
    ignore (closure_of_state n q)
  done

let eps_closure n set =
  Iset.fold (fun q acc -> Iset.union acc (closure_of_state n q)) set Iset.empty

let step n set a =
  let post =
    Iset.fold (fun p acc -> Iset.union acc (successors n p a)) set Iset.empty
  in
  eps_closure n post

let accepts n word =
  let final =
    List.fold_left (fun set a -> step n set a) (eps_closure n n.starts) word
  in
  Iset.intersects final n.finals

(* Emptiness: BFS over all transitions (epsilon included). *)
let is_empty n =
  let rec go frontier seen =
    if Iset.is_empty frontier then true
    else if Iset.intersects frontier n.finals then false
    else
      let next = ref Iset.empty in
      Iset.iter
        (fun p ->
          next := Iset.union !next n.eps.(p);
          for a = 0 to n.alphabet_size - 1 do
            next := Iset.union !next (successors n p a)
          done)
        frontier;
      let fresh = Iset.diff !next seen in
      go fresh (Iset.union seen fresh)
  in
  go n.starts n.starts

(* Shortest accepted word, if any: BFS over the subset construction keyed on
   whole state sets (cached Bitset hash), producing a witness used to report
   counterexamples from the decision procedures.

   The level loop is the pool's [parallel_frontier]: stepping the current
   level's sets happens across domains, while dedup against [seen] and the
   finals check run sequentially in (state order, symbol order) — the same
   order the sequential BFS visited discoveries, so the returned witness is
   identical at every job count. *)
let shortest_word n =
  if is_empty n then None
  else begin
    let module H = Hashtbl.Make (Repr.Bitset) in
    let start = eps_closure n n.starts in
    if Iset.intersects start n.finals then Some []
    else begin
      if Par.Pool.effective_jobs () > 1 then warm_closures n;
      let seen = H.create 64 in
      H.replace seen start ();
      let witness = ref None in
      let expand (set, w) =
        (* racy read of [witness] is a pure work-skip: a stale [None] only
           means this expansion is discarded by [register] below *)
        if !witness <> None then []
        else begin
          let rec try_syms a acc =
            if a < 0 then acc
            else try_syms (a - 1) ((step n set a, a :: w) :: acc)
          in
          try_syms (n.alphabet_size - 1) []
        end
      in
      let register (set', w) =
        if !witness <> None || Iset.is_empty set' || H.mem seen set' then None
        else begin
          H.replace seen set' ();
          if Iset.intersects set' n.finals then begin
            witness := Some w;
            None
          end
          else Some (set', w)
        end
      in
      Par.Pool.parallel_frontier ~expand ~register ~roots:[ (start, []) ];
      Option.map List.rev !witness
    end
  end

(* ------------------------------------------------------------------ *)
(* Combinators (Thompson-style, with state renumbering)                *)
(* ------------------------------------------------------------------ *)

let empty alphabet_size =
  create ~num_states:1 ~alphabet_size ~starts:[ 0 ] ~finals:[] ~edges:[]
    ~eps_edges:[]

let epsilon alphabet_size =
  create ~num_states:1 ~alphabet_size ~starts:[ 0 ] ~finals:[ 0 ] ~edges:[]
    ~eps_edges:[]

let symbol alphabet_size a =
  create ~num_states:2 ~alphabet_size ~starts:[ 0 ] ~finals:[ 1 ]
    ~edges:[ (0, a, 1) ] ~eps_edges:[]

(* Lay the rows of [n1] and [n2] side by side, states of [n2] renumbered
   upwards by [n1.num_states]. *)
let juxtapose n1 n2 =
  let k = n1.num_states in
  let num = n1.num_states + n2.num_states in
  let a_sz = n1.alphabet_size in
  let trans = Array.make (num * a_sz) Iset.empty in
  Array.blit n1.trans 0 trans 0 (Array.length n1.trans);
  Array.iteri (fun i s -> trans.((k * a_sz) + i) <- Iset.shift k s) n2.trans;
  let eps = Array.make num Iset.empty in
  Array.blit n1.eps 0 eps 0 k;
  Array.iteri (fun i s -> eps.(k + i) <- Iset.shift k s) n2.eps;
  (num, trans, eps)

let union n1 n2 =
  if n1.alphabet_size <> n2.alphabet_size then
    invalid_arg "Nfa.union: alphabet mismatch";
  let k = n1.num_states in
  let num, trans, eps = juxtapose n1 n2 in
  wrap ~num_states:num ~alphabet_size:n1.alphabet_size
    ~starts:(Iset.union n1.starts (Iset.shift k n2.starts))
    ~finals:(Iset.union n1.finals (Iset.shift k n2.finals))
    ~trans ~eps

let concat n1 n2 =
  if n1.alphabet_size <> n2.alphabet_size then
    invalid_arg "Nfa.concat: alphabet mismatch";
  let k = n1.num_states in
  let num, trans, eps = juxtapose n1 n2 in
  let starts2 = Iset.shift k n2.starts in
  Iset.iter (fun f -> eps.(f) <- Iset.union eps.(f) starts2) n1.finals;
  wrap ~num_states:num ~alphabet_size:n1.alphabet_size ~starts:n1.starts
    ~finals:(Iset.shift k n2.finals) ~trans ~eps

let star n =
  (* fresh start state (index num_states) that is also final *)
  let s = n.num_states in
  let num = n.num_states + 1 in
  let a_sz = n.alphabet_size in
  let trans = Array.make (num * a_sz) Iset.empty in
  Array.blit n.trans 0 trans 0 (Array.length n.trans);
  let eps = Array.make num Iset.empty in
  Array.blit n.eps 0 eps 0 n.num_states;
  eps.(s) <- n.starts;
  Iset.iter (fun f -> eps.(f) <- Iset.add s eps.(f)) n.finals;
  wrap ~num_states:num ~alphabet_size:a_sz ~starts:(Iset.singleton s)
    ~finals:(Iset.add s n.finals) ~trans ~eps

let of_regex ~alphabet_size r =
  let rec go = function
    | Regex.Empty -> empty alphabet_size
    | Regex.Eps -> epsilon alphabet_size
    | Regex.Sym a -> symbol alphabet_size a
    | Regex.Alt (r, s) -> union (go r) (go s)
    | Regex.Seq (r, s) -> concat (go r) (go s)
    | Regex.Star r -> star (go r)
  in
  go r

let reverse n =
  let a_sz = n.alphabet_size in
  let trans = Array.make (n.num_states * a_sz) Iset.empty in
  Array.iteri
    (fun i qs ->
      let p = i / a_sz and a = i mod a_sz in
      Iset.iter
        (fun q ->
          let k = (q * a_sz) + a in
          trans.(k) <- Iset.add p trans.(k))
        qs)
    n.trans;
  let eps = Array.make n.num_states Iset.empty in
  Array.iteri
    (fun p qs -> Iset.iter (fun q -> eps.(q) <- Iset.add p eps.(q)) qs)
    n.eps;
  wrap ~num_states:n.num_states ~alphabet_size:a_sz ~starts:n.finals
    ~finals:n.starts ~trans ~eps

(* Product intersection of epsilon-free views of the two automata. *)
let inter n1 n2 =
  if n1.alphabet_size <> n2.alphabet_size then
    invalid_arg "Nfa.inter: alphabet mismatch";
  let c1 = eps_closure n1 n1.starts and c2 = eps_closure n2 n2.starts in
  (* explore reachable pairs of states on the closed successor relation *)
  let key (p, q) = (p * n2.num_states) + q in
  let tbl = Hashtbl.create 64 in
  let edges = ref [] in
  let finals = ref [] in
  let starts = ref [] in
  let id pair =
    match Hashtbl.find_opt tbl (key pair) with
    | Some i -> i
    | None ->
      let i = Hashtbl.length tbl in
      Hashtbl.add tbl (key pair) i;
      i
  in
  let queue = Queue.create () in
  let visit pair =
    let k = key pair in
    if not (Hashtbl.mem tbl k) then begin
      let _ = id pair in
      Queue.add pair queue
    end
  in
  Iset.iter (fun p -> Iset.iter (fun q -> visit (p, q)) c2) c1;
  Iset.iter (fun p -> Iset.iter (fun q -> starts := id (p, q) :: !starts) c2) c1;
  while not (Queue.is_empty queue) do
    let p, q = Queue.pop queue in
    let i = id (p, q) in
    if Iset.mem p n1.finals && Iset.mem q n2.finals then finals := i :: !finals;
    for a = 0 to n1.alphabet_size - 1 do
      let s1 = eps_closure n1 (successors n1 p a)
      and s2 = eps_closure n2 (successors n2 q a) in
      Iset.iter
        (fun p' ->
          Iset.iter
            (fun q' ->
              visit (p', q');
              edges := (i, a, id (p', q')) :: !edges)
            s2)
        s1
    done
  done;
  create
    ~num_states:(max 1 (Hashtbl.length tbl))
    ~alphabet_size:n1.alphabet_size ~starts:!starts ~finals:!finals
    ~edges:!edges ~eps_edges:[]

(* Epsilon removal: closed transitions and closure-adjusted finals.  The
   result recognizes the same language with an empty eps map. *)
let eps_free n =
  let edges = ref [] in
  for p = 0 to n.num_states - 1 do
    for a = 0 to n.alphabet_size - 1 do
      Iset.iter
        (fun q -> edges := (p, a, q) :: !edges)
        (step n (closure_of_state n p) a)
    done
  done;
  let finals =
    List.filter
      (fun q -> Iset.intersects (closure_of_state n q) n.finals)
      (List.init n.num_states Fun.id)
  in
  create ~num_states:n.num_states ~alphabet_size:n.alphabet_size
    ~starts:(Iset.elements n.starts) ~finals ~edges:!edges ~eps_edges:[]

(* Relabel symbols; [f a] lists the new symbols standing for [a]. *)
let map_symbols ~alphabet_size f n =
  let edges =
    List.concat_map (fun (p, a, q) -> List.map (fun b -> (p, b, q)) (f a))
      (edges n)
  in
  let eps_edges = ref [] in
  Array.iteri
    (fun p qs -> Iset.iter (fun q -> eps_edges := (p, q) :: !eps_edges) qs)
    n.eps;
  create ~num_states:n.num_states ~alphabet_size
    ~starts:(Iset.elements n.starts) ~finals:(Iset.elements n.finals) ~edges
    ~eps_edges:!eps_edges

let pp ppf n =
  Fmt.pf ppf "NFA(states=%d, alphabet=%d, starts=%a, finals=%a, edges=%d)"
    n.num_states n.alphabet_size
    Fmt.(list ~sep:(any ",") int)
    (Iset.elements n.starts)
    Fmt.(list ~sep:(any ",") int)
    (Iset.elements n.finals)
    (List.length (edges n))
