(* Lazy language decisions by antichain-pruned product/subset exploration.

   Containment L(sub) <= L(sup) is decided over pairs (p, S): p a single
   state of [sub], S the eps-closed set of [sup] states reachable on the
   same word.  A pair with p final and S disjoint from sup's finals
   witnesses a counterexample.  Rejection is antitone in S — every word
   rejected from S is rejected from any S' <= S — so a candidate pair
   subsumed by an already-kept (p, S') with S' <= S explores nothing new
   and is pruned (an O(words) Bitset.subset test per kept set).

   Pruning discipline: candidates are always pruned against every kept
   set, but a kept pair is retro-dropped only by a *same-level* smaller
   arrival.  Dropping a shallower pair from the BFS queue would re-route
   its counterexamples through a deeper pair and lose witness minimality;
   keeping it costs memory, not expansions (it was already dequeued).
   With this discipline the BFS level order is exact, so the first
   counterexample found is shortest, and exploration is sequential and
   deterministic — verdicts and witnesses are invariant under SWS_JOBS. *)

module Iset = Repr.Bitset

type strategy = [ `Eager | `Antichain ]

let strategy_to_string = function `Eager -> "eager" | `Antichain -> "antichain"

let strategy_of_string = function
  | "eager" -> Some `Eager
  | "antichain" -> Some `Antichain
  | _ -> None

type limits = {
  max_states : int option;
  max_depth : int option;
  deadline_s : float option;
}

let no_limits = { max_states = None; max_depth = None; deadline_s = None }
let limits ?max_states ?max_depth ?deadline_s () = { max_states; max_depth; deadline_s }

type trip = {
  tripped : [ `States | `Depth | `Deadline ];
  depth_reached : int;
  states_explored : int;
}

let pp_trip ppf t =
  Fmt.pf ppf "tripped %s at depth %d after %d states"
    (match t.tripped with
    | `States -> "max_states"
    | `Depth -> "max_depth"
    | `Deadline -> "deadline")
    t.depth_reached t.states_explored

type 'a run = ('a, trip) result

(* Process-wide gauges, read at snapshot time by Engine.Stats and the
   server telemetry registry (the Bitset.allocations pattern). *)
let states_total = Atomic.make 0
let peak = Atomic.make 0
let prunes_total = Atomic.make 0
let states_explored_total () = Atomic.get states_total
let antichain_peak () = Atomic.get peak
let subsumption_prunes_total () = Atomic.get prunes_total

let rec raise_peak v =
  let cur = Atomic.get peak in
  if v > cur && not (Atomic.compare_and_set peak cur v) then raise_peak v

(* Deadlines only arm a clock when requested; checked per expansion. *)
let deadline_hit started = function
  | None -> false
  | Some s ->
      Int64.to_float (Obs.Clock.elapsed_ns started) >= s *. 1e9

exception Found of int list
exception Tripped of trip

(* One antichain cell: the sets kept for a single sub-state, newest
   first, each tagged with the BFS level that produced it. *)
type cell = { mutable kept : (Iset.t * int) list }

let antichain_contains_cex ~limits:lim ?tick ~sup ~sub () =
  let k = Nfa.alphabet_size sub in
  let started = Obs.Clock.now_ns () in
  let explored = ref 0 in
  let kept_pairs = ref 0 in
  let run_peak = ref 0 in
  let sup_finals = Nfa.final_set sup in
  let sub_finals = Nfa.final_set sub in
  let rejecting s = not (Iset.intersects s sup_finals) in
  let chain : (int, cell) Hashtbl.t = Hashtbl.create 64 in
  let queue : (int * Iset.t * int list * int) Queue.t = Queue.create () in
  let trip tripped depth =
    raise (Tripped { tripped; depth_reached = depth; states_explored = !explored })
  in
  (* Insert candidate (p, s) discovered at [level] by word [rev_word]
     (reversed).  Raises [Found] on a counterexample; returns whether the
     pair was kept (and queued). *)
  let insert p s rev_word level =
    let cell =
      match Hashtbl.find_opt chain p with
      | Some c -> c
      | None ->
          let c = { kept = [] } in
          Hashtbl.add chain p c;
          c
    in
    if List.exists (fun (s', _) -> Iset.subset s' s) cell.kept then
      Atomic.incr prunes_total
    else begin
      if Iset.mem p sub_finals && rejecting s then raise (Found (List.rev rev_word));
      let survivors, dropped =
        List.partition
          (fun (s'', lvl'') -> not (lvl'' = level && Iset.subset s s''))
          cell.kept
      in
      List.iter (fun _ -> Atomic.incr prunes_total) dropped;
      cell.kept <- (s, level) :: survivors;
      kept_pairs := !kept_pairs + 1 - List.length dropped;
      if !kept_pairs > !run_peak then run_peak := !kept_pairs;
      Queue.push (p, s, rev_word, level) queue
    end
  in
  let live p s =
    match Hashtbl.find_opt chain p with
    | None -> false
    | Some c -> List.exists (fun (s', _) -> Iset.equal s' s) c.kept
  in
  let result =
    try
      let sub_start = Nfa.eps_closure sub (Nfa.start_set sub) in
      let sup_start = Nfa.eps_closure sup (Nfa.start_set sup) in
      Iset.iter (fun p -> insert p sup_start [] 0) sub_start;
      let depth_capped = ref false in
      while not (Queue.is_empty queue) do
        let p, s, rev_word, level = Queue.pop queue in
        (* Retro-dropped while queued: its counterexamples are covered by
           the same-level pair that dropped it. *)
        if live p s then begin
          (match lim.max_states with
          | Some n when !explored >= n -> trip `States level
          | _ -> ());
          incr explored;
          Atomic.incr states_total;
          (match tick with Some f -> f () | None -> ());
          if deadline_hit started lim.deadline_s then trip `Deadline level;
          match lim.max_depth with
          | Some d when level >= d ->
              (* Children would exceed the depth cap: remember that the
                 frontier was cut so a drained queue is not a verdict. *)
              depth_capped := true
          | _ ->
              let p_single = Iset.singleton p in
              for a = 0 to k - 1 do
                let s' = Nfa.step sup s a in
                let ps' = Nfa.step sub p_single a in
                Iset.iter (fun p' -> insert p' s' (a :: rev_word) (level + 1)) ps'
              done
        end
      done;
      if !depth_capped then
        Error
          {
            tripped = `Depth;
            depth_reached = (match lim.max_depth with Some d -> d | None -> 0);
            states_explored = !explored;
          }
      else Ok None
    with
    | Found w -> Ok (Some w)
    | Tripped t -> Error t
  in
  raise_peak !run_peak;
  result

let check_alphabets a b =
  if Nfa.alphabet_size a <> Nfa.alphabet_size b then
    invalid_arg "Lang: alphabet size mismatch"

(* The eager reference arm: full determinization, then a shortest word of
   the difference DFA.  Unmetered — a completed answer under any budget
   is sound (budgets bound work, they never forbid an answer). *)
let eager_contains_cex ~sup ~sub = Dfa.nfa_contains_cex sup sub

let contains_cex ?(strategy = `Antichain) ?(limits = no_limits) ?tick sup sub =
  check_alphabets sup sub;
  Obs.Trace.span "lang.contains" @@ fun () ->
  match strategy with
  | `Eager -> Ok (eager_contains_cex ~sup ~sub)
  | `Antichain -> antichain_contains_cex ~limits ?tick ~sup ~sub ()

let contains ?strategy ?limits ?tick sup sub =
  Result.map Option.is_none (contains_cex ?strategy ?limits ?tick sup sub)

let equivalent_cex ?strategy ?limits ?tick n1 n2 =
  Obs.Trace.span "lang.equivalent" @@ fun () ->
  match contains_cex ?strategy ?limits ?tick n2 n1 with
  | Ok (Some w) -> Ok (Some w)
  | Error _ as e -> e
  | Ok None -> contains_cex ?strategy ?limits ?tick n1 n2

let equivalent ?strategy ?limits ?tick n1 n2 =
  Result.map Option.is_none (equivalent_cex ?strategy ?limits ?tick n1 n2)

let universal_nfa alphabet_size =
  Nfa.create ~num_states:1 ~alphabet_size ~starts:[ 0 ] ~finals:[ 0 ]
    ~edges:(List.init alphabet_size (fun a -> (0, a, 0)))
    ~eps_edges:[]

let universal_cex ?strategy ?limits ?tick n =
  Obs.Trace.span "lang.universal" @@ fun () ->
  contains_cex ?strategy ?limits ?tick n (universal_nfa (Nfa.alphabet_size n))

(* Metered emptiness: reachability fixpoint on eps-closed state sets.
   Strategy-independent — neither arm determinizes. *)
let is_empty ?(limits = no_limits) ?tick n =
  Obs.Trace.span "lang.is_empty" @@ fun () ->
  let k = Nfa.alphabet_size n in
  let started = Obs.Clock.now_ns () in
  let finals = Nfa.final_set n in
  let explored = ref 0 in
  let trip tripped depth =
    raise (Tripped { tripped; depth_reached = depth; states_explored = !explored })
  in
  try
    let visited = ref (Nfa.eps_closure n (Nfa.start_set n)) in
    let frontier = ref !visited in
    let depth = ref 0 in
    if Iset.intersects !visited finals then Ok false
    else begin
      let capped = ref false in
      while not (Iset.is_empty !frontier) && not !capped do
        (match limits.max_depth with
        | Some d when !depth >= d -> capped := true
        | _ ->
            incr depth;
            explored := !explored + Iset.cardinal !frontier;
            (match tick with Some f -> f () | None -> ());
            (match limits.max_states with
            | Some m when !explored > m -> trip `States !depth
            | _ -> ());
            if deadline_hit started limits.deadline_s then trip `Deadline !depth;
            let next = ref Iset.empty in
            for a = 0 to k - 1 do
              next := Iset.union !next (Nfa.step n !frontier a)
            done;
            let fresh = Iset.diff !next !visited in
            if Iset.intersects fresh finals then raise (Found []);
            visited := Iset.union !visited fresh;
            frontier := fresh)
      done;
      if !capped && not (Iset.is_empty !frontier) then
        trip `Depth !depth
      else Ok true
    end
  with
  | Found _ -> Ok false
  | Tripped t -> Error t
