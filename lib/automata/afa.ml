(* Alternating finite automata, with arbitrary (not necessarily positive)
   Boolean transition conditions over states.  The paper's SWS(PL, PL)
   non-emptiness lower bound is by reduction from AFA emptiness [32], and the
   upper bound runs "along the same lines as AFA non-emptiness checking"
   (Theorem 4.1(3)); Example 1.1's synthesis formulas negate successor
   registers, so full Boolean conditions are needed.

   Acceptance is by backward evaluation of truth vectors; the translation to
   NFA goes through the vector DFA of the reversed language, built on the fly
   over reachable vectors only. *)

module Iset = Set.Make (Int)

type form =
  | Ftrue
  | Ffalse
  | State of int
  | Fnot of form
  | Fand of form * form
  | For of form * form

let fconj = function
  | [] -> Ftrue
  | f :: fs -> List.fold_left (fun acc g -> Fand (acc, g)) f fs

let fdisj = function
  | [] -> Ffalse
  | f :: fs -> List.fold_left (fun acc g -> For (acc, g)) f fs

let rec eval_form truth = function
  | Ftrue -> true
  | Ffalse -> false
  | State q -> truth q
  | Fnot f -> not (eval_form truth f)
  | Fand (f, g) -> eval_form truth f && eval_form truth g
  | For (f, g) -> eval_form truth f || eval_form truth g

let rec form_states acc = function
  | Ftrue | Ffalse -> acc
  | State q -> Iset.add q acc
  | Fnot f -> form_states acc f
  | Fand (f, g) | For (f, g) -> form_states (form_states acc f) g

type t = {
  num_states : int;
  alphabet_size : int;
  start : int;
  finals : Iset.t;
  delta : form array array; (* delta.(q).(a) *)
}

let create ~alphabet_size ~start ~finals ~delta =
  let num_states = Array.length delta in
  if num_states = 0 then invalid_arg "Afa.create: no states";
  Array.iter
    (fun row ->
      if Array.length row <> alphabet_size then
        invalid_arg "Afa.create: row width differs from alphabet";
      Array.iter
        (fun f ->
          Iset.iter
            (fun q ->
              if q < 0 || q >= num_states then
                invalid_arg "Afa.create: state out of range in formula")
            (form_states Iset.empty f))
        row)
    delta;
  if start < 0 || start >= num_states then invalid_arg "Afa.create: bad start";
  List.iter
    (fun q ->
      if q < 0 || q >= num_states then invalid_arg "Afa.create: bad final")
    finals;
  { num_states; alphabet_size; start; finals = Iset.of_list finals; delta }

let num_states a = a.num_states
let alphabet_size a = a.alphabet_size
let start a = a.start
let finals a = Iset.elements a.finals
let delta a q s = a.delta.(q).(s)

(* v_w(q) = "the suffix w is accepted from q"; computed right to left. *)
let accepts a word =
  let final_vector q = Iset.mem q a.finals in
  let step symbol truth q = eval_form truth a.delta.(q).(symbol) in
  let v =
    List.fold_right (fun symbol truth -> step symbol truth) word final_vector
  in
  v a.start

(* The vector DFA of the reversed language: states are truth vectors
   (encoded as the bit set of true AFA states), the start vector marks the
   finals, and reading symbol [s] rewrites vector v to
   q |-> delta(q, s) evaluated under v.  It accepts rev(w) iff the AFA
   accepts w.  Only reachable vectors are materialized; the reachable-vector
   table is a hash table over packed bit sets — this lookup dominates the
   PSPACE-style exploration of Theorem 4.1(3). *)
let reverse_vector_dfa a =
  let module Bs = Repr.Bitset in
  let module H = Hashtbl.Make (Repr.Bitset) in
  let step set s =
    let truth q = Bs.mem q set in
    let next = ref Bs.empty in
    for q = 0 to a.num_states - 1 do
      if eval_form truth a.delta.(q).(s) then next := Bs.add q !next
    done;
    !next
  in
  let start_set = Bs.of_list (Iset.elements a.finals) in
  let ids = H.create 256 in
  H.replace ids start_set 0;
  let next_id = ref 1 in
  let rows = ref [] in
  let finals = ref [] in
  let queue = Queue.create () in
  Queue.add (start_set, 0) queue;
  while not (Queue.is_empty queue) do
    let set, i = Queue.pop queue in
    if Bs.mem a.start set then finals := i :: !finals;
    let row =
      Array.init a.alphabet_size (fun s ->
          let set' = step set s in
          match H.find_opt ids set' with
          | Some j -> j
          | None ->
            let j = !next_id in
            incr next_id;
            H.replace ids set' j;
            Queue.add (set', j) queue;
            j)
    in
    rows := (i, row) :: !rows
  done;
  let trans = Array.make !next_id [||] in
  List.iter (fun (i, row) -> trans.(i) <- row) !rows;
  Dfa.create ~alphabet_size:a.alphabet_size ~start:0 ~finals:!finals ~trans

let to_nfa a = Nfa.reverse (Dfa.to_nfa (reverse_vector_dfa a))

(* Emptiness coincides with emptiness of the reverse vector DFA, so no
   reversal or second subset construction is needed.  This is the PSPACE-style
   on-the-fly check of Theorem 4.1(3): only reachable vectors are explored. *)
let is_empty a = Dfa.is_empty (reverse_vector_dfa a)

(* A shortest accepted word, as a witness. *)
let shortest_word a =
  Option.map List.rev (Dfa.shortest_word (reverse_vector_dfa a))

(* Embed an NFA (without epsilon transitions beyond its closure) as an AFA:
   disjunction over successors. *)
let of_nfa n =
  let alphabet_size = Nfa.alphabet_size n in
  (* introduce a fresh start to encode multiple NFA starts *)
  let base = Nfa.num_states n in
  let num = base + 1 in
  let start_closure = Nfa.eps_closure n (Nfa.start_set n) in
  let nfa_finals = Nfa.final_set n in
  let succ_form source_set s =
    let succ = Nfa.step n source_set s in
    fdisj (List.map (fun q -> State q) (Nfa.Iset.elements succ))
  in
  let delta =
    Array.init num (fun q ->
        Array.init alphabet_size (fun s ->
            if q = base then succ_form start_closure s
            else succ_form (Nfa.closure_of_state n q) s))
  in
  let finals =
    let base_finals =
      List.filter
        (fun q -> Nfa.Iset.intersects (Nfa.closure_of_state n q) nfa_finals)
        (List.init base Fun.id)
    in
    if Nfa.Iset.intersects start_closure nfa_finals then base :: base_finals
    else base_finals
  in
  create ~alphabet_size ~start:base ~finals ~delta

let pp_form ppf f =
  let rec go ppf = function
    | Ftrue -> Fmt.string ppf "T"
    | Ffalse -> Fmt.string ppf "F"
    | State q -> Fmt.pf ppf "q%d" q
    | Fnot f -> Fmt.pf ppf "~%a" atomic f
    | Fand (f, g) -> Fmt.pf ppf "%a & %a" atomic f atomic g
    | For (f, g) -> Fmt.pf ppf "%a | %a" atomic f atomic g
  and atomic ppf f =
    match f with
    | Ftrue | Ffalse | State _ -> go ppf f
    | _ -> Fmt.pf ppf "(%a)" go f
  in
  go ppf f

let pp ppf a =
  Fmt.pf ppf "AFA(states=%d, alphabet=%d, start=%d, finals=%a)" a.num_states
    a.alphabet_size a.start
    Fmt.(list ~sep:(any ",") int)
    (finals a)
