(** Deterministic finite automata with complete transition matrices, the
    Roman-model service format and the normal form for PL equivalence. *)

type t

val create :
  alphabet_size:int -> start:int -> finals:int list -> trans:int array array -> t

val num_states : t -> int
val alphabet_size : t -> int
val start : t -> int
val finals : t -> int list
val is_final : t -> int -> bool
val delta : t -> int -> int -> int
val run : t -> int list -> int
val accepts : t -> int list -> bool
val complement : t -> t

(** Pair construction; [keep] decides finality of a pair. *)
val product : (bool -> bool -> bool) -> t -> t -> t

val inter : t -> t -> t
val union : t -> t -> t

(** [diff a b] accepts L(a) minus L(b). *)
val diff : t -> t -> t

val is_empty : t -> bool

(** Shortest accepted word, the non-emptiness witness. *)
val shortest_word : t -> int list option

(** [contains a b] iff L(b) is a subset of L(a). *)
val contains : t -> t -> bool

(** [contains_cex a b] is a shortest word of [L(b) \ L(a)]: [None] iff
    [contains a b].  The eager counterpart of [Lang.contains_cex]. *)
val contains_cex : t -> t -> int list option

val equivalent : t -> t -> bool

(** A word accepted by exactly one of the two, when they differ. *)
val distinguishing_word : t -> t -> int list option

(** Moore partition refinement over the reachable part. *)
val minimize : t -> t

val to_nfa : t -> Nfa.t

(** On-the-fly subset construction. *)
val of_nfa : Nfa.t -> t

val nfa_equivalent : Nfa.t -> Nfa.t -> bool

(** [nfa_contains a b] iff L(b) is a subset of L(a). *)
val nfa_contains : Nfa.t -> Nfa.t -> bool

(** [nfa_contains_cex a b] is a shortest word of [L(b) \ L(a)] found by
    full determinization; [None] iff [nfa_contains a b]. *)
val nfa_contains_cex : Nfa.t -> Nfa.t -> int list option

val pp : t Fmt.t
