(** The lazy language-decision engine: containment, equivalence, emptiness
    and universality of NFAs decided by on-the-fly product/subset
    exploration with antichain subsumption — the matching upper-bound
    technique for the EXPTIME lower bound on automata-game composition.

    The eager pipeline ([Dfa.of_nfa] then a DFA product) materializes the
    full subset automaton before asking the question; this engine explores
    pairs [(p, S)] of a left-automaton state and a right-automaton state
    set ({!Repr.Bitset}) breadth-first, pruning every pair whose right set
    is a superset of one already explored for the same [p] (rejection is
    antitone in the set, so the smaller set reaches every counterexample
    the larger one does).  On adversarial families (the k-th-symbol-from-
    the-end NFAs whose minimal DFA needs [2^k] states) the frontier stays
    polynomial where determinization walls out.

    Every procedure takes a {!strategy}: [`Antichain] is the lazy core,
    [`Eager] delegates to the determinizing reference implementation in
    {!Dfa} — the two are differentially tested and benchable side by side.
    Exploration is sequential and deterministic: verdicts and witness
    words are identical at every domain-pool size. *)

type strategy = [ `Eager | `Antichain ]

val strategy_to_string : strategy -> string
val strategy_of_string : string -> strategy option

(** Exploration limits ([None] = unlimited).  The antichain arm checks
    them as it explores; the eager arm is a monolithic subset construction
    that cannot stop mid-way, so it ignores limits and always answers
    (budgets bound work, they never forbid a completed answer). *)
type limits = {
  max_states : int option;  (** product pairs expanded *)
  max_depth : int option;  (** BFS depth = witness word length *)
  deadline_s : float option;  (** wall clock from the call *)
}

val no_limits : limits
val limits : ?max_states:int -> ?max_depth:int -> ?deadline_s:float -> unit -> limits

(** A tripped exploration: which limit stopped it and how far it got.
    A trip is the only alternative to a sound verdict — the engine never
    converts an exhausted search into a Yes or a No. *)
type trip = {
  tripped : [ `States | `Depth | `Deadline ];
  depth_reached : int;
  states_explored : int;
}

val pp_trip : trip Fmt.t

type 'a run = ('a, trip) result

(** [contains_cex sup sub] decides [L(sub) <= L(sup)] (the argument order
    of {!Dfa.nfa_contains}): [Ok None] when contained, [Ok (Some w)] with
    [w] a shortest word of [L(sub) \ L(sup)] otherwise.  [tick] is called
    once per expanded pair (the caller's stats hook).  Raises
    [Invalid_argument] when the alphabets differ. *)
val contains_cex :
  ?strategy:strategy ->
  ?limits:limits ->
  ?tick:(unit -> unit) ->
  Nfa.t ->
  Nfa.t ->
  int list option run

val contains :
  ?strategy:strategy ->
  ?limits:limits ->
  ?tick:(unit -> unit) ->
  Nfa.t ->
  Nfa.t ->
  bool run

(** [equivalent_cex n1 n2]: [Ok None] when the languages coincide,
    [Ok (Some w)] with [w] accepted by exactly one of the two otherwise.
    Containment is checked [L(n1) <= L(n2)] first, then the converse, so
    the witness is a shortest word of the first non-empty difference —
    the convention of {!Dfa.distinguishing_word}. *)
val equivalent_cex :
  ?strategy:strategy ->
  ?limits:limits ->
  ?tick:(unit -> unit) ->
  Nfa.t ->
  Nfa.t ->
  int list option run

val equivalent :
  ?strategy:strategy ->
  ?limits:limits ->
  ?tick:(unit -> unit) ->
  Nfa.t ->
  Nfa.t ->
  bool run

(** [universal_cex n]: [Ok None] when [L(n)] is all words, [Ok (Some w)]
    with [w] a shortest rejected word otherwise — containment of the
    one-state universal automaton in [n]. *)
val universal_cex :
  ?strategy:strategy ->
  ?limits:limits ->
  ?tick:(unit -> unit) ->
  Nfa.t ->
  int list option run

(** Metered emptiness (strategy-independent: a reachability fixpoint on
    eps-closed state sets, no determinization either way). *)
val is_empty : ?limits:limits -> ?tick:(unit -> unit) -> Nfa.t -> bool run

(** {1 Process-wide gauges}  Read at snapshot time by [Engine.Stats] and
    the server's telemetry registry, like the interner and bit-set
    gauges: no per-sink plumbing, monotone except {!antichain_peak}. *)

(** Product pairs expanded by the antichain arm since process start. *)
val states_explored_total : unit -> int

(** Largest kept-pair count any single exploration reached. *)
val antichain_peak : unit -> int

(** Candidates pruned or retro-dropped by subsumption since start. *)
val subsumption_prunes_total : unit -> int
