(* Deterministic finite automata: complete transition matrices over the
   integer alphabet.  DFAs are the Roman model's service specifications [6]
   and the normal form behind the PL equivalence procedure. *)

module Iset = Set.Make (Int)

type t = {
  alphabet_size : int;
  start : int;
  finals : Iset.t;
  trans : int array array; (* trans.(q).(a) = successor *)
}

let create ~alphabet_size ~start ~finals ~trans =
  let num_states = Array.length trans in
  if num_states = 0 then invalid_arg "Dfa.create: no states";
  Array.iter
    (fun row ->
      if Array.length row <> alphabet_size then
        invalid_arg "Dfa.create: row width differs from alphabet";
      Array.iter
        (fun q ->
          if q < 0 || q >= num_states then
            invalid_arg "Dfa.create: successor out of range")
        row)
    trans;
  if start < 0 || start >= num_states then invalid_arg "Dfa.create: bad start";
  List.iter
    (fun q ->
      if q < 0 || q >= num_states then invalid_arg "Dfa.create: bad final")
    finals;
  { alphabet_size; start; finals = Iset.of_list finals; trans }

let num_states d = Array.length d.trans
let alphabet_size d = d.alphabet_size
let start d = d.start
let finals d = Iset.elements d.finals
let is_final d q = Iset.mem q d.finals
let delta d q a = d.trans.(q).(a)

let run d word = List.fold_left (fun q a -> delta d q a) d.start word

let accepts d word = is_final d (run d word)

let complement d =
  let all = List.init (num_states d) Fun.id in
  {
    d with
    finals = Iset.of_list (List.filter (fun q -> not (is_final d q)) all);
  }

(* Pair construction; [keep] decides finality from the two components. *)
let product keep d1 d2 =
  if d1.alphabet_size <> d2.alphabet_size then
    invalid_arg "Dfa.product: alphabet mismatch";
  let n2 = num_states d2 in
  let encode p q = (p * n2) + q in
  let num = num_states d1 * n2 in
  let trans =
    Array.init num (fun code ->
        let p = code / n2 and q = code mod n2 in
        Array.init d1.alphabet_size (fun a ->
            encode (delta d1 p a) (delta d2 q a)))
  in
  let finals =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun q -> if keep (is_final d1 p) (is_final d2 q) then Some (encode p q) else None)
          (List.init n2 Fun.id))
      (List.init (num_states d1) Fun.id)
  in
  create ~alphabet_size:d1.alphabet_size ~start:(encode d1.start d2.start)
    ~finals
    ~trans

let inter d1 d2 = product ( && ) d1 d2
let union d1 d2 = product ( || ) d1 d2
let diff d1 d2 = product (fun a b -> a && not b) d1 d2

let reachable_states d =
  let seen = Array.make (num_states d) false in
  let rec go q =
    if not seen.(q) then begin
      seen.(q) <- true;
      for a = 0 to d.alphabet_size - 1 do
        go (delta d q a)
      done
    end
  in
  go d.start;
  seen

let is_empty d =
  let reach = reachable_states d in
  not (Iset.exists (fun q -> reach.(q)) d.finals)

(* Shortest accepted word via BFS, as a witness for non-emptiness. *)
let shortest_word d =
  let n = num_states d in
  let pred = Array.make n None in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(d.start) <- true;
  Queue.add d.start queue;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    if is_final d q then found := Some q
    else
      for a = 0 to d.alphabet_size - 1 do
        let q' = delta d q a in
        if not seen.(q') then begin
          seen.(q') <- true;
          pred.(q') <- Some (q, a);
          Queue.add q' queue
        end
      done
  done;
  match !found with
  | None -> None
  | Some q ->
    let rec back q acc =
      match pred.(q) with
      | None -> acc
      | Some (p, a) -> back p (a :: acc)
    in
    Some (back q [])

let contains d1 d2 = is_empty (diff d2 d1) (* L(d2) <= L(d1) *)

(* Shortest word of L(d2) \ L(d1): [None] iff [contains d1 d2]. *)
let contains_cex d1 d2 = shortest_word (diff d2 d1)

let equivalent d1 d2 = is_empty (diff d1 d2) && is_empty (diff d2 d1)

(* A word in L(d1) xor L(d2), when the two differ. *)
let distinguishing_word d1 d2 =
  match shortest_word (diff d1 d2) with
  | Some w -> Some w
  | None -> shortest_word (diff d2 d1)

(* Moore's partition-refinement minimization (restricted to reachable
   states).  Hopcroft would be asymptotically better; Moore is simple and
   the automata here are modest. *)
let minimize d =
  let reach = reachable_states d in
  let states = List.filter (fun q -> reach.(q)) (List.init (num_states d) Fun.id) in
  let n = num_states d in
  (* class_of.(q) = current block id *)
  let class_of = Array.make n 0 in
  List.iter (fun q -> class_of.(q) <- (if is_final d q then 1 else 0)) states;
  let changed = ref true in
  while !changed do
    changed := false;
    (* signature of q: (class, [class of delta q a]) *)
    let signature q =
      (class_of.(q), List.init d.alphabet_size (fun a -> class_of.(delta d q a)))
    in
    let tbl = Hashtbl.create 16 in
    let next_id = ref 0 in
    let new_class = Array.make n 0 in
    List.iter
      (fun q ->
        let s = signature q in
        let id =
          match Hashtbl.find_opt tbl s with
          | Some id -> id
          | None ->
            let id = !next_id in
            incr next_id;
            Hashtbl.add tbl s id;
            id
        in
        new_class.(q) <- id)
      states;
    if List.exists (fun q -> new_class.(q) <> class_of.(q)) states then begin
      changed := true;
      List.iter (fun q -> class_of.(q) <- new_class.(q)) states
    end
  done;
  let num_blocks =
    1 + List.fold_left (fun m q -> max m class_of.(q)) 0 states
  in
  let repr = Array.make num_blocks (-1) in
  List.iter (fun q -> if repr.(class_of.(q)) < 0 then repr.(class_of.(q)) <- q) states;
  let trans =
    Array.init num_blocks (fun b ->
        Array.init d.alphabet_size (fun a -> class_of.(delta d repr.(b) a)))
  in
  let finals =
    List.filter (fun b -> is_final d repr.(b)) (List.init num_blocks Fun.id)
  in
  create ~alphabet_size:d.alphabet_size ~start:class_of.(d.start) ~finals ~trans

let to_nfa d =
  let edges = ref [] in
  for q = 0 to num_states d - 1 do
    for a = 0 to d.alphabet_size - 1 do
      edges := (q, a, delta d q a) :: !edges
    done
  done;
  Nfa.create ~num_states:(num_states d) ~alphabet_size:d.alphabet_size
    ~starts:[ d.start ] ~finals:(finals d) ~edges:!edges ~eps_edges:[]

(* Subset construction, on the fly over reachable subsets only.  The
   frontier is keyed on whole NFA state sets: a hash table over packed bit
   sets (cached hash, word-wise equality) instead of a balanced map under a
   set-of-int comparison — this lookup dominates the construction.

   The construction is level-synchronised so it can run on the domain pool:
   stepping every set of the current BFS level is pure (closures prewarmed)
   and fans out across domains; the discovery table [ids] is then updated
   sequentially in (state-id order, symbol order).  A FIFO traversal assigns
   ids in exactly that order too, so the resulting DFA — state numbering,
   rows, finals — is bit-identical to the sequential construction at every
   job count. *)
let of_nfa n =
  let module H = Hashtbl.Make (Repr.Bitset) in
  let alphabet_size = Nfa.alphabet_size n in
  let start_set = Nfa.eps_closure n (Nfa.start_set n) in
  let ids = H.create 256 in
  H.replace ids start_set 0;
  let rows = ref [] in
  let n_finals = Nfa.final_set n in
  let finals = ref [] in
  let next_id = ref 1 in
  if Par.Pool.effective_jobs () > 1 then Nfa.warm_closures n;
  let expand (set, _) =
    Array.init alphabet_size (fun a -> Nfa.step n set a)
  in
  let rec level frontier =
    (* frontier: this level's (set, id) pairs in ascending id order *)
    match frontier with
    | [] -> ()
    | _ ->
      let expansions = Par.Pool.parallel_list_map expand frontier in
      let next = ref [] in
      List.iter2
        (fun (set, i) succs ->
          if Nfa.Iset.intersects set n_finals then finals := i :: !finals;
          let row = Array.make alphabet_size 0 in
          for a = 0 to alphabet_size - 1 do
            let set' = succs.(a) in
            row.(a) <-
              (match H.find_opt ids set' with
              | Some j -> j
              | None ->
                let j = !next_id in
                incr next_id;
                H.replace ids set' j;
                next := (set', j) :: !next;
                j)
          done;
          rows := (i, row) :: !rows)
        frontier expansions;
      level (List.rev !next)
  in
  level [ (start_set, 0) ];
  let num = !next_id in
  let trans = Array.make num [||] in
  List.iter (fun (i, row) -> trans.(i) <- row) !rows;
  create ~alphabet_size ~start:0 ~finals:!finals ~trans

let nfa_equivalent n1 n2 = equivalent (of_nfa n1) (of_nfa n2)

let nfa_contains n1 n2 = contains (of_nfa n1) (of_nfa n2)

let nfa_contains_cex n1 n2 = contains_cex (of_nfa n1) (of_nfa n2)

let pp ppf d =
  Fmt.pf ppf "DFA(states=%d, alphabet=%d, start=%d, finals=%a)" (num_states d)
    d.alphabet_size d.start
    Fmt.(list ~sep:(any ",") int)
    (finals d)
