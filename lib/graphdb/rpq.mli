(** (2-way) regular path queries: regular expressions over the doubled
    label alphabet, computing the node pairs connected by a matching path
    (Section 5.2). *)

module Iset : Set.S with type elt = int and type t = Set.Make(Int).t

type t

(** The regex ranges over the doubled alphabet: [0..k-1] forward labels,
    [k..2k-1] their inverses. *)
val make : num_labels:int -> Automata.Regex.t -> t

val regex : t -> Automata.Regex.t
val num_labels : t -> int

val forward : int -> Automata.Regex.t
val backward : num_labels:int -> int -> Automata.Regex.t
val to_nfa : t -> Automata.Nfa.t

(** Product-automaton reachability from one source node. *)
val eval_from : Lgraph.t -> t -> int -> Iset.t

(** All (source, target) pairs. *)
val eval : Lgraph.t -> t -> (int * int) list

(** Containment over all graphs = language containment, decided on
    {!Automata.Lang} (default [`Antichain]; both strategies agree). *)
val contained_in : ?strategy:Automata.Lang.strategy -> t -> t -> bool

val equivalent : ?strategy:Automata.Lang.strategy -> t -> t -> bool
val pp : t Fmt.t
