(* (2-way) regular path queries.  A 2RPQ is a regular expression over the
   doubled alphabet of edge labels and their inverses; on a graph database it
   computes the pairs (d0, dq) of nodes connected by a path spelling a word
   of the language (Section 5.2 of the paper). *)

module Regex = Automata.Regex
module Nfa = Automata.Nfa
module Dfa = Automata.Dfa
module Iset = Set.Make (Int)

type t = {
  regex : Regex.t;    (* over the doubled alphabet: 0..k-1 fwd, k..2k-1 bwd *)
  num_labels : int;
}

let make ~num_labels regex =
  let doubled = 2 * num_labels in
  if Regex.max_symbol regex >= doubled then
    invalid_arg "Rpq.make: symbol outside doubled alphabet";
  { regex; num_labels }

let regex q = q.regex
let num_labels q = q.num_labels

let forward a = Regex.Sym a
let backward ~num_labels a = Regex.Sym (a + num_labels)

let to_nfa q = Nfa.of_regex ~alphabet_size:(2 * q.num_labels) q.regex

(* Product reachability: states are (node, nfa_state) pairs; from a source
   node the query reaches target v iff some pair (v, final) is reachable. *)
let eval_from g q source =
  if Lgraph.num_labels g <> q.num_labels then
    invalid_arg "Rpq.eval_from: label count mismatch";
  let nfa = to_nfa q in
  let nq = Nfa.num_states nfa in
  let key u s = (u * nq) + s in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push u s =
    if not (Hashtbl.mem seen (key u s)) then begin
      Hashtbl.add seen (key u s) ();
      Queue.add (u, s) queue
    end
  in
  Nfa.Iset.iter
    (fun s -> push source s)
    (Nfa.eps_closure nfa (Nfa.Iset.of_list (Nfa.starts nfa)));
  let finals = Nfa.Iset.of_list (Nfa.finals nfa) in
  let answers = ref Iset.empty in
  while not (Queue.is_empty queue) do
    let u, s = Queue.pop queue in
    if Nfa.Iset.mem s finals then answers := Iset.add u !answers;
    for symbol = 0 to (2 * q.num_labels) - 1 do
      let next_states = Nfa.eps_closure nfa (Nfa.successors nfa s symbol) in
      if not (Nfa.Iset.is_empty next_states) then
        Iset.iter
          (fun v -> Nfa.Iset.iter (fun s' -> push v s') next_states)
          (Lgraph.move g u symbol)
    done
  done;
  !answers

let eval g q =
  List.concat_map
    (fun u -> List.map (fun v -> (u, v)) (Iset.elements (eval_from g q u)))
    (List.init (Lgraph.num_nodes g) Fun.id)

(* Language containment of RPQs is exactly containment of the queries
   (over all graphs), decidable via the automata substrate — lazily by
   default, with no limits (RPQ automata are regex-sized). *)
let contained_in ?strategy q1 q2 =
  q1.num_labels = q2.num_labels
  &&
  match Automata.Lang.contains ?strategy (to_nfa q2) (to_nfa q1) with
  | Ok b -> b
  | Error _ -> assert false (* no limits: the exploration never trips *)

let equivalent ?strategy q1 q2 =
  contained_in ?strategy q1 q2 && contained_in ?strategy q2 q1

let pp ppf q = Fmt.pf ppf "RPQ(%a)" Regex.pp q.regex
