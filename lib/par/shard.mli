(** Per-domain instances of a mutable accumulator, merged at read time.

    A ['a t] hands each domain that touches it a private ['a] (created by the
    constructor passed to {!create}), so hot-path writes are plain
    unsynchronised mutation of domain-local state.  Readers fold over every
    instance ever created, in creation order, taking a short registry lock —
    the "per-domain + merge" scheme used by [Engine.Stats] counters,
    [Obs.Trace] ring buffers and the [Index] stores.

    On a single domain there is exactly one instance, created eagerly by
    {!create} for the calling domain, so sharded state behaves (and prints)
    exactly like the unsharded original.

    Instances are never reclaimed: a domain's instance outlives the domain,
    so counts survive [Domain.join] and merging at a join point sees all
    work.  Writers must be the owning domain only; readers folding while
    another domain writes see a consistent-enough view for monotonic
    counters (int loads are atomic) but should fold at fork/join boundaries
    for exact totals. *)

type 'a t

val create : (unit -> 'a) -> 'a t
(** [create fresh] makes a sharded cell; the calling domain's instance is
    created immediately (so it is first in fold order). *)

val get : 'a t -> 'a
(** This domain's instance, created on first use. *)

val owner : 'a t -> 'a
(** The instance of the domain that called {!create} — the fast path for
    code that knows it is on the owning domain. *)

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
(** Fold over all instances in creation order (owner first). *)

val iter : ('a -> unit) -> 'a t -> unit
