(* Process-global domain pool.

   Design constraints, in order:

   1. Determinism.  Work is split into contiguous chunks and results are
      reassembled in chunk order on the calling domain, so outputs never
      depend on scheduling.  All order-sensitive mutation (id assignment in
      subset construction, successor registration) happens sequentially on
      the caller via [parallel_frontier]'s [register].

   2. Bit-identical sequential mode.  When the effective job count is 1 the
      combinators run plain inline loops: no tasks, no locks, no domains.

   3. Flat fork/join.  A task that itself calls a combinator runs it inline
      ([in_task] is domain-local state), so the pool never nests and a full
      complement of busy workers cannot deadlock waiting on itself.

   The pool only ever grows (workers are parked on a condition variable when
   idle); domains spawned here live until [at_exit], which keeps domain ids
   stable for per-domain sharding elsewhere. *)

let max_jobs = 64

let clamp n = if n < 1 then 1 else if n > max_jobs then max_jobs else n

let env_jobs =
  lazy
    (match Option.map String.trim (Sys.getenv_opt "SWS_JOBS") with
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Some (clamp n)
      | _ -> None)
    | None -> None)

let default_jobs () =
  match Lazy.force env_jobs with
  | Some n -> n
  | None -> clamp (Domain.recommended_domain_count ())

let override = ref None

let set_jobs = function
  | None -> override := None
  | Some n -> override := Some (clamp n)

let jobs () =
  match !override with
  | Some n -> n
  | None -> default_jobs ()

(* True while the current domain is executing a pool task (including the
   calling domain when it helps drain the queue). *)
let in_task : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let effective_jobs () = if !(Domain.DLS.get in_task) then 1 else jobs ()

(* ---- pool state ------------------------------------------------------ *)

let lock = Mutex.create ()
let work_available = Condition.create ()
let batch_done = Condition.create ()
let queue : (unit -> unit) Queue.t = Queue.create ()
let shutting_down = ref false
let workers = ref []

let worker_body () =
  let flag = Domain.DLS.get in_task in
  let rec loop () =
    Mutex.lock lock;
    while Queue.is_empty queue && not !shutting_down do
      Condition.wait work_available lock
    done;
    if Queue.is_empty queue then Mutex.unlock lock (* shutdown *)
    else begin
      let task = Queue.pop queue in
      Mutex.unlock lock;
      flag := true;
      task ();
      flag := false;
      loop ()
    end
  in
  loop ()

let shutdown () =
  Mutex.lock lock;
  shutting_down := true;
  Condition.broadcast work_available;
  Mutex.unlock lock;
  List.iter Domain.join !workers;
  workers := []

let registered_shutdown = ref false

let ensure_workers n =
  Mutex.lock lock;
  let have = List.length !workers in
  if have < n && not !shutting_down then begin
    if not !registered_shutdown then begin
      registered_shutdown := true;
      at_exit shutdown
    end;
    (* a freshly spawned worker blocks on [lock] until we release it below *)
    for _ = have + 1 to n do
      workers := Domain.spawn worker_body :: !workers
    done
  end;
  Mutex.unlock lock

(* Run [tasks.(0) (); ...; tasks.(n-1) ()] to completion, each exactly once,
   across the pool plus the calling domain.  Re-raises the first exception
   observed (by task submission order is not guaranteed, but task bodies
   below only write into disjoint slots, so any exception is a genuine
   failure). *)
let run_tasks tasks =
  let n = Array.length tasks in
  let remaining = Atomic.make n in
  let first_exn = Atomic.make None in
  let wrap task () =
    (try task ()
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       ignore (Atomic.compare_and_set first_exn None (Some (e, bt))));
    if Atomic.fetch_and_add remaining (-1) = 1 then begin
      (* last task out wakes the caller, who may already be waiting *)
      Mutex.lock lock;
      Condition.broadcast batch_done;
      Mutex.unlock lock
    end
  in
  Mutex.lock lock;
  Array.iter (fun t -> Queue.add (wrap t) queue) tasks;
  Condition.broadcast work_available;
  Mutex.unlock lock;
  (* the calling domain helps drain the queue, flagged as in-task so nested
     combinator calls run inline *)
  let flag = Domain.DLS.get in_task in
  let rec help () =
    Mutex.lock lock;
    if Queue.is_empty queue then Mutex.unlock lock
    else begin
      let task = Queue.pop queue in
      Mutex.unlock lock;
      flag := true;
      task ();
      flag := false;
      help ()
    end
  in
  help ();
  Mutex.lock lock;
  while Atomic.get remaining > 0 do
    Condition.wait batch_done lock
  done;
  Mutex.unlock lock;
  match Atomic.get first_exn with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* ---- async tasks ----------------------------------------------------- *)

(* One-shot promises over the same worker queue the fork/join combinators
   drain.  The server's connection threads are systhreads multiplexed on
   the main domain (the per-domain runtime lock serialises them), so
   request compute must hop to a pool domain to run concurrently: [async]
   enqueues the thunk, [await] parks the submitting thread on the
   promise's condition variable until a worker finishes it.  Workers run
   async tasks with the [in_task] flag set, exactly like batch tasks, so a
   request handler that reaches a parallel combinator runs it inline —
   the grain of server parallelism is the request, and the fork/join
   discipline stays flat. *)

type 'a outcome = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a cell = { cm : Mutex.t; cc : Condition.t; mutable outcome : 'a outcome }
type 'a promise = Inline of (unit -> 'a) | Queued of 'a cell

let async f =
  let j = jobs () in
  if j <= 1 || !(Domain.DLS.get in_task) then Inline f
  else begin
    (* [j] full workers: unlike the fork/join path (j-1 workers + helping
       caller), awaiting threads do not drain the queue. *)
    ensure_workers j;
    let c = { cm = Mutex.create (); cc = Condition.create (); outcome = Pending } in
    let task () =
      let r =
        try Done (f ()) with e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock c.cm;
      c.outcome <- r;
      Condition.broadcast c.cc;
      Mutex.unlock c.cm
    in
    Mutex.lock lock;
    Queue.add task queue;
    Condition.signal work_available;
    Mutex.unlock lock;
    Queued c
  end

let await = function
  | Inline f -> f ()
  | Queued c ->
    Mutex.lock c.cm;
    let rec wait () =
      match c.outcome with
      | Pending ->
        Condition.wait c.cc c.cm;
        wait ()
      | Done v ->
        Mutex.unlock c.cm;
        v
      | Failed (e, bt) ->
        Mutex.unlock c.cm;
        Printexc.raise_with_backtrace e bt
    in
    wait ()

(* ---- chunking -------------------------------------------------------- *)

(* More chunks than domains smooths uneven per-element cost; chunk order
   still fully determines result order. *)
let chunks_per_domain = 4

let chunk_bounds n k =
  (* k contiguous slices covering 0..n-1, sizes differing by at most one *)
  let base = n / k and extra = n mod k in
  Array.init k (fun i ->
      let lo = (i * base) + min i extra in
      let len = base + if i < extra then 1 else 0 in
      (lo, len))

let parallel_map f arr =
  let n = Array.length arr in
  let j = effective_jobs () in
  if n = 0 then [||]
  else if j <= 1 || n < 2 then Array.map f arr
  else begin
    ensure_workers (j - 1);
    let k = min n (j * chunks_per_domain) in
    let bounds = chunk_bounds n k in
    let parts = Array.make k [||] in
    let tasks =
      Array.init k (fun i () ->
          let lo, len = bounds.(i) in
          parts.(i) <- Array.map f (Array.sub arr lo len))
    in
    run_tasks tasks;
    Array.concat (Array.to_list parts)
  end

let parallel_list_map f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ -> Array.to_list (parallel_map f (Array.of_list xs))

let parallel_fold ~map ~combine ~init arr =
  let n = Array.length arr in
  let j = effective_jobs () in
  if n = 0 then init
  else if j <= 1 || n < 2 then
    Array.fold_left (fun acc x -> combine acc (map x)) init arr
  else
    let mapped = parallel_map map arr in
    Array.fold_left combine init mapped

let parallel_frontier ~expand ~register ~roots =
  let rec level frontier =
    match frontier with
    | [] -> ()
    | _ ->
      let expansions = parallel_list_map expand frontier in
      let next =
        List.fold_left
          (fun acc ds ->
            List.fold_left
              (fun acc d ->
                match register d with Some s -> s :: acc | None -> acc)
              acc ds)
          [] expansions
      in
      level (List.rev next)
  in
  level roots
