(* Each shard cell owns a DLS key, so [get] is one domain-local slot read on
   the hot path.  The registry of all instances (for [fold]) is an append-only
   list under a mutex, touched once per (domain, cell) pair.  DLS slots are
   never reclaimed by the runtime; cells are created per Stats/Trace session,
   which is a few hundred slots over a long run — noise. *)

type 'a t = {
  key : 'a option ref Domain.DLS.key;
  fresh : unit -> 'a;
  lock : Mutex.t;
  mutable all : 'a list; (* reverse creation order *)
}

let get t =
  let slot = Domain.DLS.get t.key in
  match !slot with
  | Some v -> v
  | None ->
    let v = t.fresh () in
    Mutex.protect t.lock (fun () -> t.all <- v :: t.all);
    slot := Some v;
    v

let create fresh =
  let t =
    {
      key = Domain.DLS.new_key (fun () -> ref None);
      fresh;
      lock = Mutex.create ();
      all = [];
    }
  in
  ignore (get t);
  t

let owner t =
  (* the creating domain's instance is the last element (reverse order) *)
  let rec last = function
    | [ v ] -> v
    | _ :: tl -> last tl
    | [] -> assert false (* [create] registered one *)
  in
  last (Mutex.protect t.lock (fun () -> t.all))

let snapshot t = List.rev (Mutex.protect t.lock (fun () -> t.all))

let fold f init t = List.fold_left f init (snapshot t)

let iter f t = List.iter f (snapshot t)
