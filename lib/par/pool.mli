(** Fixed domain pool with deterministic fork/join combinators.

    The pool is process-global and lazily started: no domain is spawned until
    the first parallel call that actually needs one.  Worker domains are
    reused across calls and shut down through an [at_exit] hook, so their
    domain ids stay small and stable for the lifetime of the process — the
    per-domain sharding in {!Shard}, [Engine.Stats] and [Obs.Trace] relies on
    that.

    Every combinator here preserves sequential result order: chunks are
    contiguous slices of the input and results are concatenated in slice
    order, so the output is independent of how the OS schedules domains.
    With an effective job count of 1 every combinator degrades to a plain
    inline loop on the calling domain — no pool, no locks, no domains —
    which is what makes [--jobs 1] bit-identical to the pre-pool code. *)

val default_jobs : unit -> int
(** Job count used when {!set_jobs} has not been called: [SWS_JOBS] from the
    environment if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()].  Clamped to [1 .. 64]. *)

val jobs : unit -> int
(** The configured job count: the {!set_jobs} override if any, otherwise
    {!default_jobs}. *)

val set_jobs : int option -> unit
(** [set_jobs (Some n)] forces the job count (the [--jobs] CLI flag);
    [set_jobs None] restores {!default_jobs}.  Clamped to [1 .. 64].  The
    pool grows on demand but never shrinks; lowering the job count merely
    leaves the extra workers idle. *)

val effective_jobs : unit -> int
(** {!jobs}, except inside a pool task it is 1: nested parallel calls run
    inline on the executing domain rather than re-entering the pool, which
    keeps the fork/join discipline flat and deadlock-free. *)

(** {2 One-shot async tasks}

    The request-scheduling interface used by the composition server
    ([lib/server]): connection threads are systhreads serialised by their
    domain's runtime lock, so CPU-bound request work must hop to a pool
    domain to actually run in parallel. *)

type 'a promise

val async : (unit -> 'a) -> 'a promise
(** [async f] schedules [f] on the pool and returns immediately.  Safe to
    call from any systhread or domain.  With an effective job count of 1
    (sequential mode, or already inside a pool task) nothing is enqueued:
    the returned promise runs [f] on the thread that {!await}s it, so
    results and exceptions flow identically in both modes.  Pool tasks run
    flagged in-task: parallel combinators reached from [f] execute inline
    — the unit of parallelism is the task, and nesting stays flat. *)

val await : 'a promise -> 'a
(** Block until the task finishes; returns its value or re-raises its
    exception (with the original backtrace).  Each promise is one-shot
    with a single consumer: await it exactly once. *)

val parallel_map : ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f arr] is [Array.map f arr] computed across the pool in
    contiguous chunks.  Result order is input order regardless of the job
    count.  [f] must be safe to run on any domain (the elements handed to
    each domain are disjoint, so per-element state is fine; shared state
    needs its own synchronisation).  An exception raised by [f] is re-raised
    on the calling domain after all chunks have finished. *)

val parallel_list_map : ('a -> 'b) -> 'a list -> 'b list
(** {!parallel_map} for lists (input order preserved). *)

val parallel_fold :
  map:('a -> 'b) -> combine:('b -> 'b -> 'b) -> init:'b -> 'a array -> 'b
(** [parallel_fold ~map ~combine ~init arr] maps every element across the
    pool, then combines per-chunk results left-to-right in chunk order:
    [combine (... (combine init b0) ...) bn].  Deterministic for any
    [combine]; equal to the sequential fold whenever [combine] is
    associative over the mapped values. *)

val parallel_frontier :
  expand:('s -> 'd list) ->
  register:('d -> 's option) ->
  roots:'s list ->
  unit
(** Level-synchronised BFS worklist.  Each round expands every state of the
    current frontier across the pool ([expand], run concurrently, must be
    effect-free on shared state), then registers the discoveries sequentially
    on the calling domain in (state order, discovery order) — exactly the
    order a sequential FIFO traversal would produce, so id assignment done
    inside [register] is deterministic and independent of the job count.
    [register] returns [Some s'] to enqueue a newly-discovered state for the
    next level, [None] for an already-known discovery.  Terminates when a
    level registers no fresh states. *)
